package dataset

import (
	"testing"
)

func TestDigitsShapeAndDeterminism(t *testing.T) {
	a := Digits(50, 7)
	if a.Classes != 10 || a.Width != DigitSide*DigitSide {
		t.Errorf("set meta = %+v", a)
	}
	if len(a.Examples) != 50 {
		t.Fatalf("examples = %d", len(a.Examples))
	}
	for i, ex := range a.Examples {
		if len(ex.X) != a.Width {
			t.Fatalf("example %d width = %d", i, len(ex.X))
		}
		if ex.Label < 0 || ex.Label > 9 {
			t.Fatalf("example %d label = %d", i, ex.Label)
		}
	}
	b := Digits(50, 7)
	for i := range a.Examples {
		if a.Examples[i].Label != b.Examples[i].Label {
			t.Fatal("same seed, different labels")
		}
		for j := range a.Examples[i].X {
			if a.Examples[i].X[j] != b.Examples[i].X[j] {
				t.Fatal("same seed, different pixels")
			}
		}
	}
}

func TestDigitsClassesAreDistinguishable(t *testing.T) {
	// Mean images of distinct classes must differ substantially —
	// otherwise the task is unlearnable.
	s := Digits(2000, 3)
	means := make([][]float64, 10)
	counts := make([]int, 10)
	for c := range means {
		means[c] = make([]float64, s.Width)
	}
	for _, ex := range s.Examples {
		for j, px := range ex.X {
			means[ex.Label][j] += px.Unit()
		}
		counts[ex.Label]++
	}
	for c := range means {
		if counts[c] == 0 {
			t.Fatalf("class %d absent from 2000 samples", c)
		}
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	// Compare 1 vs 8: maximally different segment sets.
	var dist float64
	for j := range means[1] {
		d := means[1][j] - means[8][j]
		dist += d * d
	}
	if dist < 1 {
		t.Errorf("class 1 vs 8 mean distance² = %v, want > 1", dist)
	}
}

func TestDigitsHaveInkAndBackground(t *testing.T) {
	s := Digits(10, 1)
	for i, ex := range s.Examples {
		var bright, dark int
		for _, px := range ex.X {
			if px > 150 {
				bright++
			}
			if px < 40 {
				dark++
			}
		}
		if bright < 5 {
			t.Errorf("example %d has %d bright pixels", i, bright)
		}
		if dark < 50 {
			t.Errorf("example %d has %d dark pixels", i, dark)
		}
	}
}

func TestDigitsSized28(t *testing.T) {
	s := DigitsSized(50, MNISTSide, 9)
	if s.Width != 784 {
		t.Fatalf("width = %d, want 784", s.Width)
	}
	// Glyphs must still have ink and background at MNIST scale.
	for i, ex := range s.Examples[:10] {
		var bright int
		for _, px := range ex.X {
			if px > 150 {
				bright++
			}
		}
		if bright < 10 {
			t.Errorf("example %d has %d bright pixels", i, bright)
		}
	}
}

func TestDigitsSizedPanicsOnTinySide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny side accepted")
		}
	}()
	DigitsSized(1, 8, 1)
}

func TestSplit(t *testing.T) {
	s := Digits(100, 2)
	train, test := s.Split(0.8)
	if len(train.Examples) != 80 || len(test.Examples) != 20 {
		t.Errorf("split = %d/%d", len(train.Examples), len(test.Examples))
	}
	if train.Classes != 10 || test.Width != s.Width {
		t.Error("split lost metadata")
	}
}

func TestFloats(t *testing.T) {
	s := Digits(1, 2)
	f := s.Floats(0)
	if len(f) != s.Width {
		t.Fatalf("floats len = %d", len(f))
	}
	for _, v := range f {
		if v < 0 || v > 1 {
			t.Fatalf("float %v out of [0,1]", v)
		}
	}
}

func TestFlowSetsSeparable(t *testing.T) {
	for _, mk := range []struct {
		name    string
		set     *Set
		classes int
	}{
		{"anomaly", Anomaly(500, 5), 2},
		{"iot", IoTTraffic(500, 5), 10},
	} {
		if mk.set.Classes != mk.classes || mk.set.Width != FlowFeatureWidth {
			t.Errorf("%s meta = %+v", mk.name, mk.set)
		}
		// Nearest-centroid must beat chance comfortably: compute class
		// centroids from the first half, classify the second half.
		half := len(mk.set.Examples) / 2
		cents := make([][]float64, mk.classes)
		counts := make([]int, mk.classes)
		for c := range cents {
			cents[c] = make([]float64, mk.set.Width)
		}
		for _, ex := range mk.set.Examples[:half] {
			for j, px := range ex.X {
				cents[ex.Label][j] += px.Unit()
			}
			counts[ex.Label]++
		}
		for c := range cents {
			if counts[c] == 0 {
				continue
			}
			for j := range cents[c] {
				cents[c][j] /= float64(counts[c])
			}
		}
		correct := 0
		for _, ex := range mk.set.Examples[half:] {
			best, bestD := -1, 1e18
			for c := range cents {
				var d float64
				for j, px := range ex.X {
					dd := px.Unit() - cents[c][j]
					d += dd * dd
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			if best == ex.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(mk.set.Examples)-half)
		if acc < 0.9 {
			t.Errorf("%s nearest-centroid accuracy = %.2f, want > 0.9", mk.name, acc)
		}
	}
}
