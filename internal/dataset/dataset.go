// Package dataset provides the synthetic workloads that stand in for the
// paper's proprietary or large external datasets (see DESIGN.md §2):
//
//   - Digits: a procedurally generated 10-class handwritten-digit-like glyph
//     task replacing MNIST for the LeNet experiments (Fig 15/16). Glyphs are
//     seven-segment renderings with random translation, thickness and pixel
//     noise — a learnable but non-trivial classification task exercising the
//     identical inference datapath.
//   - Anomaly: a 2-class flow-feature task replacing UNSW-NB15 for the
//     security model (§6.3).
//   - IoTTraffic: a 10-class flow-feature task replacing the IoT traces for
//     the traffic-classification model (§6.3).
//
// All generators are deterministic under a seed.
package dataset

import (
	"math/rand/v2"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Example is one labelled sample: an 8-bit feature vector (image pixels or
// flow features) and its class.
type Example struct {
	X     []fixed.Code
	Label int
}

// Set is a labelled dataset.
type Set struct {
	Name    string
	Classes int
	// Width is the feature vector length.
	Width    int
	Examples []Example
}

// Floats returns example i's features normalized to [0, 1].
func (s *Set) Floats(i int) []float64 {
	out := make([]float64, len(s.Examples[i].X))
	for j, c := range s.Examples[i].X {
		out[j] = c.Unit()
	}
	return out
}

// Split partitions the set into train and test subsets at the given train
// fraction.
func (s *Set) Split(trainFrac float64) (train, test *Set) {
	n := int(float64(len(s.Examples)) * trainFrac)
	train = &Set{Name: s.Name + "/train", Classes: s.Classes, Width: s.Width, Examples: s.Examples[:n]}
	test = &Set{Name: s.Name + "/test", Classes: s.Classes, Width: s.Width, Examples: s.Examples[n:]}
	return train, test
}

// DigitSide is the default glyph image side length; the digit task has
// DigitSide² inputs.
const DigitSide = 16

// MNISTSide is the side length matching the paper's MNIST inputs (28×28),
// used by the full-scale LeNet-300-100 experiment.
const MNISTSide = 28

// segments lists, per digit, the lit seven-segment elements
// (A top, B upper-right, C lower-right, D bottom, E lower-left,
// F upper-left, G middle).
var segments = [10][7]bool{
	{true, true, true, true, true, true, false},     // 0
	{false, true, true, false, false, false, false}, // 1
	{true, true, false, true, true, false, true},    // 2
	{true, true, true, true, false, false, true},    // 3
	{false, true, true, false, false, true, true},   // 4
	{true, false, true, true, false, true, true},    // 5
	{true, false, true, true, true, true, true},     // 6
	{true, true, true, false, false, false, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// Digits generates n glyph examples with uniformly random classes at the
// default 16×16 size.
func Digits(n int, seed uint64) *Set { return DigitsSized(n, DigitSide, seed) }

// DigitsSized generates glyphs at the given square image side (e.g.
// MNISTSide for the full-scale LeNet-300-100 experiment).
func DigitsSized(n, side int, seed uint64) *Set {
	if side < 12 {
		panic("dataset: digit glyphs need at least a 12-pixel side")
	}
	rng := rand.New(rand.NewPCG(seed, 0xd161))
	s := &Set{Name: "digits", Classes: 10, Width: side * side}
	for i := 0; i < n; i++ {
		label := rng.IntN(10)
		s.Examples = append(s.Examples, Example{X: renderDigit(label, side, rng), Label: label})
	}
	return s
}

// renderDigit draws a seven-segment digit into a side² image with random
// translation, stroke intensity, and additive pixel noise.
func renderDigit(d, side int, rng *rand.Rand) []fixed.Code {
	img := make([]float64, side*side)
	// Glyph box scales with the image: roughly half the width, 2/3 the
	// height, positioned with jitter.
	w := side/2 - 1
	h := side*2/3 + 1
	jitter := side / 8
	ox := (side-w)/2 + rng.IntN(2*jitter+1) - jitter
	oy := (side-h)/2 + rng.IntN(2*jitter+1) - jitter
	intensity := 0.7 + 0.3*rng.Float64()

	set := func(x, y int, v float64) {
		if x < 0 || y < 0 || x >= side || y >= side {
			return
		}
		i := y*side + x
		if v > img[i] {
			img[i] = v
		}
	}
	hline := func(y, x0, x1 int) {
		for x := x0; x <= x1; x++ {
			set(ox+x, oy+y, intensity)
			set(ox+x, oy+y+1, intensity*0.8)
		}
	}
	vline := func(x, y0, y1 int) {
		for y := y0; y <= y1; y++ {
			set(ox+x, oy+y, intensity)
			set(ox+x+1, oy+y, intensity*0.8)
		}
	}
	seg := segments[d]
	if seg[0] { // A: top
		hline(0, 0, w-1)
	}
	if seg[1] { // B: upper right
		vline(w-1, 0, h/2)
	}
	if seg[2] { // C: lower right
		vline(w-1, h/2, h-1)
	}
	if seg[3] { // D: bottom
		hline(h-1, 0, w-1)
	}
	if seg[4] { // E: lower left
		vline(0, h/2, h-1)
	}
	if seg[5] { // F: upper left
		vline(0, 0, h/2)
	}
	if seg[6] { // G: middle
		hline(h/2, 0, w-1)
	}

	out := make([]fixed.Code, len(img))
	for i, v := range img {
		v += 0.05 * rng.Float64() // background noise
		out[i] = fixed.FromUnit(v)
	}
	return out
}

// FlowFeatureWidth is the flow-classification feature vector length, matching
// the NIC models' 32-feature input.
const FlowFeatureWidth = 32

// flowSet generates class-conditional Gaussian-cluster feature vectors: each
// class has a random center in feature space; examples scatter around it.
func flowSet(name string, classes, n int, spread float64, seed uint64) *Set {
	rng := rand.New(rand.NewPCG(seed, 0xf10f))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, FlowFeatureWidth)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()
		}
	}
	s := &Set{Name: name, Classes: classes, Width: FlowFeatureWidth}
	for i := 0; i < n; i++ {
		label := rng.IntN(classes)
		x := make([]fixed.Code, FlowFeatureWidth)
		for j := range x {
			v := centers[label][j] + spread*rng.NormFloat64()
			x[j] = fixed.FromUnit(v)
		}
		s.Examples = append(s.Examples, Example{X: x, Label: label})
	}
	return s
}

// Anomaly generates the 2-class network-anomaly task (UNSW-NB15 stand-in):
// benign traffic clusters tightly; attacks scatter from a distinct center.
func Anomaly(n int, seed uint64) *Set {
	return flowSet("anomaly", 2, n, 0.08, seed)
}

// IoTTraffic generates the 10-class IoT device-classification task.
func IoTTraffic(n int, seed uint64) *Set {
	return flowSet("iot-traffic", 10, n, 0.06, seed)
}
