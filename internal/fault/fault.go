// Package fault is Lightning's deterministic fault-injection framework: the
// chaos seam the robustness tests (and a deployment's game-day drills) drive.
//
// The paper's prototype stays accurate only because a bias controller
// continuously re-locks the analog operating point (Appendix B); everything
// downstream of that assumption — the health scoring, the per-shard circuit
// breakers, degraded-mode serving — needs reproducible ways to break the
// hardware. This package provides them at all three layers:
//
//   - photonic faults (BiasRunaway, LaserSag, DeadLane, DriftBurst) corrupt
//     a shard's analog core through the hooks internal/photonic exposes;
//   - memory faults (ReadErrorBurst, BitFlips) corrupt the shared DRAM
//     weight store through mem.DRAM's ReadFault seam;
//   - network faults (Conn, StubConn, DropFirst) wrap a net.PacketConn with
//     seeded loss, corruption and duplication in front of the serve loop.
//
// Faults are scheduled in a Plan — a logical-step schedule with no wall
// clock anywhere — and fired by a Runner against an Applier (the NIC). The
// same seed and plan always produce the same fault sequence, so a chaos
// soak is a regression test, not a dice roll.
package fault

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"github.com/lightning-smartnic/lightning/internal/mem"
	"github.com/lightning-smartnic/lightning/internal/photonic"
)

// Target bundles the hardware surfaces a fault can act on: one shard's
// photonic core and the (shared) DRAM weight store. Either may be nil when
// the injection context lacks that surface; faults must check.
type Target struct {
	Core *photonic.Core
	DRAM *mem.DRAM
}

// Fault is one injectable hardware fault. Apply runs under the owning
// shard's serve lock, so it never races an in-flight query.
type Fault interface {
	// Name identifies the fault in logs and Fired records.
	Name() string
	// Apply injects the fault into the target's hardware.
	Apply(t Target) error
}

// Event schedules a fault against a shard at a logical plan step.
type Event struct {
	// Step is the plan-clock tick at which the event fires (a Runner whose
	// clock reaches or passes Step fires it).
	Step uint64
	// Shard selects which core shard's Target receives the fault. Memory
	// faults act on the shared DRAM regardless of shard.
	Shard int
	// Fault is the fault to inject.
	Fault Fault
}

// Plan is a deterministic fault schedule: a set of events ordered by step.
// Build one with At, or derive a randomized-but-reproducible one with
// Scatter. Plans are immutable once handed to a Runner.
type Plan struct {
	events []Event
}

// NewPlan returns an empty fault plan.
func NewPlan() *Plan { return &Plan{} }

// At schedules a fault on a shard at a plan step and returns the plan for
// chaining. Events keep their insertion order within a step.
func (p *Plan) At(step uint64, shard int, f Fault) *Plan {
	p.events = append(p.events, Event{Step: step, Shard: shard, Fault: f})
	return p
}

// Scatter schedules n copies of the faults produced by mk at seeded-random
// steps in [0, window) across seeded-random shards in [0, shards) — the
// bulk loader for chaos soaks. mk receives the event index so callers can
// vary fault parameters (and their seeds) per event.
func (p *Plan) Scatter(seed uint64, n int, window uint64, shards int, mk func(i int) Fault) *Plan {
	rng := rand.New(rand.NewPCG(seed, 0xfa17))
	for i := 0; i < n; i++ {
		p.At(rng.Uint64N(window), rng.IntN(shards), mk(i))
	}
	return p
}

// Events returns the plan's events sorted by step (stable, so same-step
// events keep insertion order).
func (p *Plan) Events() []Event {
	out := append([]Event(nil), p.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// Applier injects a fault into one shard's hardware surfaces.
// *lightning.NIC implements it (InjectFault takes the shard's serve lock).
type Applier interface {
	InjectFault(shard int, f Fault) error
}

// Fired records one event's injection outcome.
type Fired struct {
	Event Event
	// Err is the injection error, if any (e.g. a fault aimed at a lane the
	// core doesn't have). The runner keeps going: a chaos plan with one
	// misaimed event still exercises the rest.
	Err error
}

// Runner binds a plan to an applier and fires events as its logical clock
// advances. The caller owns the clock: advance it per served query, per
// wall-tick, per test phase — whatever makes the experiment reproducible.
// Safe for concurrent use.
type Runner struct {
	mu      sync.Mutex
	events  []Event
	applier Applier
	step    uint64
	next    int
	fired   []Fired
}

// NewRunner prepares a plan for execution against an applier. Events
// scheduled at step 0 fire on the first Advance (the clock starts at 0 and
// an event fires when the clock reaches or passes its step).
func NewRunner(p *Plan, a Applier) *Runner {
	return &Runner{events: p.Events(), applier: a}
}

// Advance moves the plan clock forward n ticks and injects every event
// whose step the clock has now reached, in step order. It returns the
// events fired by this call.
func (r *Runner) Advance(n uint64) []Fired {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.step += n
	var out []Fired
	for r.next < len(r.events) && r.events[r.next].Step <= r.step {
		ev := r.events[r.next]
		r.next++
		f := Fired{Event: ev, Err: r.applier.InjectFault(ev.Shard, ev.Fault)}
		r.fired = append(r.fired, f)
		out = append(out, f)
	}
	return out
}

// Step advances the plan clock one tick.
func (r *Runner) Step() []Fired { return r.Advance(1) }

// Clock returns the current plan-clock value.
func (r *Runner) Clock() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.step
}

// Fired returns every event injected so far, in firing order.
func (r *Runner) Fired() []Fired {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Fired(nil), r.fired...)
}

// Pending returns the count of events not yet fired.
func (r *Runner) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events) - r.next
}

// errNoSurface builds the error for a fault applied to a Target lacking the
// hardware surface it needs.
func errNoSurface(name, surface string) error {
	return fmt.Errorf("fault: %s needs a %s in its target", name, surface)
}
