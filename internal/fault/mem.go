package fault

import (
	"math/rand/v2"
	"sync"
)

// ReadErrorBurst fails the next Reads loads from the DRAM weight store —
// an uncorrectable-read-error burst (a failing rank, a controller brownout).
// Queries served during the burst fail loudly with Err verdicts; once the
// burst is exhausted the hook turns inert and reads succeed again, so the
// health subsystem's probation trials recover the shards. The DRAM is
// shared, so this fault degrades every shard at once regardless of the
// event's Shard field.
type ReadErrorBurst struct {
	// Reads is how many loads fail before the burst is spent.
	Reads uint64
}

// Name implements Fault.
func (f ReadErrorBurst) Name() string { return "mem-read-error-burst" }

// Apply implements Fault.
func (f ReadErrorBurst) Apply(t Target) error {
	if t.DRAM == nil {
		return errNoSurface(f.Name(), "DRAM")
	}
	var mu sync.Mutex
	left := f.Reads
	t.DRAM.SetReadFault(func(key string, blob []byte) ([]byte, bool) {
		mu.Lock()
		defer mu.Unlock()
		if left > 0 {
			left--
			return nil, false
		}
		return blob, true
	})
	return nil
}

// BitFlips corrupts every DRAM load: PerRead seeded-random bit flips in a
// private copy of the blob (the stored data is never mutated — the flips
// model a noisy read path, not stuck cells). Weight-blob flips produce
// silently wrong inference results; the known-answer probes cannot see them
// (they bypass DRAM), so this fault exercises the Err-verdict and
// wrong-answer paths a deployment monitors end to end. Remove with ClearMem.
type BitFlips struct {
	// PerRead is the number of bit flips injected into each load.
	PerRead int
	// Seed drives flip positions deterministically.
	Seed uint64
}

// Name implements Fault.
func (f BitFlips) Name() string { return "mem-bit-flips" }

// Apply implements Fault.
func (f BitFlips) Apply(t Target) error {
	if t.DRAM == nil {
		return errNoSurface(f.Name(), "DRAM")
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(f.Seed, 0xb17f))
	t.DRAM.SetReadFault(func(key string, blob []byte) ([]byte, bool) {
		if len(blob) == 0 || f.PerRead <= 0 {
			return blob, true
		}
		cp := append([]byte(nil), blob...)
		mu.Lock()
		for i := 0; i < f.PerRead; i++ {
			pos := rng.IntN(len(cp) * 8)
			cp[pos/8] ^= 1 << (pos % 8)
		}
		mu.Unlock()
		return cp, true
	})
	return nil
}

// ClearMem removes any installed DRAM fault hook — the repair action a plan
// schedules to end a memory-fault window.
type ClearMem struct{}

// Name implements Fault.
func (ClearMem) Name() string { return "mem-clear" }

// Apply implements Fault.
func (ClearMem) Apply(t Target) error {
	if t.DRAM == nil {
		return errNoSurface(ClearMem{}.Name(), "DRAM")
	}
	t.DRAM.SetReadFault(nil)
	return nil
}
