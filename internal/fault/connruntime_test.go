package fault

import (
	"testing"
	"time"
)

// Tests for Conn's runtime fault controls — the surfaces node-level faults
// drive mid-run: Blackhole (partition), SetLatency (straggler), and the
// latency/jitter config. CorruptNextTx is covered with NodeCorrupt in
// node_test.go.

func TestConnBlackholeBothDirections(t *testing.T) {
	inner := NewStubConn([][]byte{{1}, {2}, {3}})
	c := NewConn(inner, ConnConfig{Seed: 4})
	c.Blackhole(true)
	// Rx: every queued datagram is swallowed; the read surfaces the drained
	// queue's timeout, exactly like a partitioned socket going silent.
	buf := make([]byte, 4)
	if _, _, err := c.ReadFrom(buf); err == nil {
		t.Fatal("partitioned read delivered a datagram")
	}
	// Tx: reported as written, never delivered.
	if n, err := c.WriteTo([]byte{9}, Addr{}); err != nil || n != 1 {
		t.Fatalf("partitioned write: n=%d err=%v, want reported success", n, err)
	}
	if inner.Writes() != 0 {
		t.Fatalf("partitioned conn delivered %d writes", inner.Writes())
	}
	if st := c.Stats(); st.Blackholed != 4 {
		t.Fatalf("Blackholed = %d, want 4 (3 rx + 1 tx)", st.Blackholed)
	}
	// Heal: traffic flows again in both directions.
	c.Blackhole(false)
	inner.Enqueue([]byte{7})
	if n, _, err := c.ReadFrom(buf); err != nil || buf[0] != 7 {
		t.Fatalf("healed read = %v (n=%d, err=%v), want [7]", buf[:1], n, err)
	}
	if _, err := c.WriteTo([]byte{8}, Addr{}); err != nil || inner.Writes() != 1 {
		t.Fatalf("healed write: err=%v writes=%d, want delivery", err, inner.Writes())
	}
}

// TestConnLatencyLowerBound: configured rx/tx latency must actually delay
// traffic. Only a lower bound is asserted so the test stays robust under CI
// load; jitter adds on top, never subtracts.
func TestConnLatencyLowerBound(t *testing.T) {
	inner := NewStubConn()
	for i := 0; i < 5; i++ {
		inner.Enqueue([]byte{byte(i)})
	}
	c := NewConn(inner, ConnConfig{Seed: 5, RxLatency: 2 * time.Millisecond, TxLatency: 2 * time.Millisecond})
	buf := make([]byte, 4)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, _, err := c.ReadFrom(buf); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 reads at 2ms rx latency took %v, want >= 10ms", elapsed)
	}
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.WriteTo([]byte{byte(i)}, Addr{}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 writes at 2ms tx latency took %v, want >= 10ms", elapsed)
	}
}

// TestConnSetLatencyAtRuntime: SetLatency reconfigures a live conn — the
// slow-node fault arriving and healing mid-run — and jitter draws stay on
// the seeded stream (reconfiguring must not reseed it).
func TestConnSetLatencyAtRuntime(t *testing.T) {
	inner := NewStubConn()
	c := NewConn(inner, ConnConfig{Seed: 6})
	// Fast by default.
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := c.WriteTo([]byte{1}, Addr{}); err != nil {
			t.Fatal(err)
		}
	}
	fast := time.Since(start)
	c.SetLatency(0, 0, 2*time.Millisecond, 0)
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.WriteTo([]byte{1}, Addr{}); err != nil {
			t.Fatal(err)
		}
	}
	if slow := time.Since(start); slow < 10*time.Millisecond {
		t.Fatalf("post-SetLatency writes took %v (baseline %v), want >= 10ms", slow, fast)
	}
	// Heal: back to fast. Bound the healed pass generously rather than
	// comparing against the baseline, which CI noise would make flaky.
	c.SetLatency(0, 0, 0, 0)
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.WriteTo([]byte{1}, Addr{}); err != nil {
			t.Fatal(err)
		}
	}
	if healed := time.Since(start); healed >= 10*time.Millisecond {
		t.Fatalf("healed writes still slow: %v", healed)
	}
}

// TestConnJitterDeterministicBySeed: with jitter configured, two conns on
// the same seed draw the identical delay sequence — the property that makes
// a chaos run a regression test. The delays are observed through the
// deterministic delayLocked draw by timing-free inspection: we reconstruct
// the expected sequence from an identically-seeded twin and compare stats
// after identical traffic.
func TestConnJitterDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) ConnStats {
		inner := NewStubConn()
		c := NewConn(inner, ConnConfig{
			Seed: seed, TxDrop: 0.3, TxJitter: time.Microsecond, TxLatency: 0,
		})
		for i := 0; i < 100; i++ {
			if _, err := c.WriteTo([]byte{byte(i)}, Addr{}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	a, b := run(12), run(12)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if o := run(13); o == a {
		t.Fatalf("different seeds produced identical fault patterns: %+v", o)
	}
}
