package fault

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/photonic"
)

// BiasRunaway models a bias-controller fault: the DC bias applied to a
// lane's first modulator jumps by DeltaVolts off the locked null, exactly
// the condition Appendix B's 1% tap monitor exists to catch. Readings stay
// plausible but wrong — the silent-corruption fault class only a
// known-answer probe detects. Healed by Relock (re-lock + recalibration).
type BiasRunaway struct {
	// Lane selects the wavelength lane.
	Lane int
	// DeltaVolts is the bias excursion (the prototype's Vpi is 5 V, so a
	// volt or two is a catastrophic miscalibration).
	DeltaVolts float64
}

// Name implements Fault.
func (f BiasRunaway) Name() string {
	return fmt.Sprintf("bias-runaway(lane=%d, %+.2fV)", f.Lane, f.DeltaVolts)
}

// Apply implements Fault.
func (f BiasRunaway) Apply(t Target) error {
	l, err := lane(t, f.Name(), f.Lane)
	if err != nil {
		return err
	}
	l.Mod1.Bias += f.DeltaVolts
	return nil
}

// DriftBurst applies a seeded thermal random walk to every modulator of the
// core for Steps steps — time-compressed ThermalDrift, for plans that want
// gradual degradation rather than a step change. Healed by Relock.
type DriftBurst struct {
	// StepVolts is the per-step random-walk standard deviation.
	StepVolts float64
	// Steps is how many walk steps to compress into the injection.
	Steps int
	// Seed drives the walk; the same seed always produces the same drift.
	Seed uint64
}

// Name implements Fault.
func (f DriftBurst) Name() string {
	return fmt.Sprintf("drift-burst(σ=%.3fV × %d)", f.StepVolts, f.Steps)
}

// Apply implements Fault.
func (f DriftBurst) Apply(t Target) error {
	if t.Core == nil {
		return errNoSurface(f.Name(), "photonic core")
	}
	d := photonic.NewThermalDrift(f.StepVolts, f.Seed)
	for i := 0; i < f.Steps; i++ {
		for _, l := range t.Core.Lanes() {
			d.Apply(l.Mod1)
			d.Apply(l.Mod2)
		}
	}
	return nil
}

// LaserSag scales the core's carrier power by Factor (0.5 ≈ a 3 dB sag):
// every reading shrinks proportionally because the detector decode
// constants still assume the calibrated power. Healed by Relock, which
// renormalizes the decode calibration at the sagged power.
type LaserSag struct {
	// Factor multiplies the current carrier power (must be positive; a
	// factor above 1 models an overshooting source).
	Factor float64
}

// Name implements Fault.
func (f LaserSag) Name() string { return fmt.Sprintf("laser-sag(×%.2f)", f.Factor) }

// Apply implements Fault.
func (f LaserSag) Apply(t Target) error {
	if t.Core == nil {
		return errNoSurface(f.Name(), "photonic core")
	}
	if f.Factor <= 0 {
		return fmt.Errorf("fault: %s: factor must be positive", f.Name())
	}
	t.Core.SetCarrierPower(t.Core.CarrierPower() * f.Factor)
	return nil
}

// DeadLane extinguishes a wavelength lane permanently — a comb-line dropout
// or fiber break. Not healable: Relock fails on a dead lane, so a shard hit
// by this fault stays quarantined until hardware repair.
type DeadLane struct {
	// Lane selects the wavelength lane to kill.
	Lane int
}

// Name implements Fault.
func (f DeadLane) Name() string { return fmt.Sprintf("dead-lane(%d)", f.Lane) }

// Apply implements Fault.
func (f DeadLane) Apply(t Target) error {
	l, err := lane(t, f.Name(), f.Lane)
	if err != nil {
		return err
	}
	l.Kill()
	return nil
}

// lane resolves a lane index on the target's core.
func lane(t Target, name string, i int) (*photonic.Lane, error) {
	if t.Core == nil {
		return nil, errNoSurface(name, "photonic core")
	}
	lanes := t.Core.Lanes()
	if i < 0 || i >= len(lanes) {
		return nil, fmt.Errorf("fault: %s: core has %d lanes", name, len(lanes))
	}
	return lanes[i], nil
}
