package fault

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Addr is the placeholder net.Addr the stub conns report.
type Addr struct{}

// Network implements net.Addr.
func (Addr) Network() string { return "udp" }

// String implements net.Addr.
func (Addr) String() string { return "fault:0" }

// timeoutError is the net.Error the stub conns return when their queue runs
// dry, so serve loops treat it exactly like a read-deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "fault: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrTimeout is the timeout error StubConn returns once its queue is empty.
var ErrTimeout net.Error = timeoutError{}

// StubConn feeds a fixed set of datagrams to a serve loop as fast as it can
// read them, then times out forever — a deterministic stand-in for a socket
// under burst load. Writes are recorded, and can be made to fail (an
// unreachable client) or stall (a slow downstream holding a worker busy).
// Safe for concurrent use by a reader and several writers.
type StubConn struct {
	mu    sync.Mutex
	queue [][]byte

	writes atomic.Uint64

	// FailWrites makes every WriteTo return an error. Set before serving.
	FailWrites bool
	// WriteDelay stalls each WriteTo, holding the calling worker busy. Set
	// before serving.
	WriteDelay time.Duration
	// ReadErr, when set, is returned by ReadFrom once the queue is empty —
	// a fatal (non-timeout) socket failure under a serve loop, where the
	// default empty-queue behaviour is a timeout. Set before serving.
	ReadErr error
}

// NewStubConn builds a stub conn preloaded with the given datagrams.
func NewStubConn(datagrams ...[][]byte) *StubConn {
	c := &StubConn{}
	for _, batch := range datagrams {
		c.queue = append(c.queue, batch...)
	}
	return c
}

// Enqueue appends one datagram to the read queue.
func (c *StubConn) Enqueue(d []byte) {
	c.mu.Lock()
	c.queue = append(c.queue, d)
	c.mu.Unlock()
}

// Writes returns the count of successful WriteTo calls.
func (c *StubConn) Writes() uint64 { return c.writes.Load() }

// ReadFrom implements net.PacketConn: it pops the next queued datagram, or
// times out (after a short sleep, so cancelled serve loops spin gently) —
// unless ReadErr is set, in which case the empty queue surfaces that fatal
// error instead.
func (c *StubConn) ReadFrom(p []byte) (int, net.Addr, error) {
	c.mu.Lock()
	if len(c.queue) == 0 {
		err := c.ReadErr
		c.mu.Unlock()
		if err != nil {
			return 0, nil, err
		}
		time.Sleep(time.Millisecond)
		return 0, nil, ErrTimeout
	}
	d := c.queue[0]
	c.queue = c.queue[1:]
	c.mu.Unlock()
	return copy(p, d), Addr{}, nil
}

// WriteTo implements net.PacketConn.
func (c *StubConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	if c.WriteDelay > 0 {
		time.Sleep(c.WriteDelay)
	}
	if c.FailWrites {
		return 0, errors.New("fault: write refused")
	}
	c.writes.Add(1)
	return len(p), nil
}

// Close implements net.PacketConn.
func (c *StubConn) Close() error { return nil }

// LocalAddr implements net.PacketConn.
func (c *StubConn) LocalAddr() net.Addr { return Addr{} }

// SetDeadline implements net.PacketConn.
func (c *StubConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.PacketConn.
func (c *StubConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.PacketConn.
func (c *StubConn) SetWriteDeadline(time.Time) error { return nil }

// DropRxConn wraps a real socket and silently discards the first n
// datagrams it reads — deterministic fragment loss in front of a server.
type DropRxConn struct {
	net.PacketConn
	mu      sync.Mutex
	drop    int
	dropped int
}

// DropFirst wraps pc so its first n reads are discarded.
func DropFirst(pc net.PacketConn, n int) *DropRxConn {
	return &DropRxConn{PacketConn: pc, drop: n}
}

// Dropped returns how many datagrams have been discarded so far.
func (c *DropRxConn) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// ReadFrom implements net.PacketConn, losing the first `drop` datagrams.
func (c *DropRxConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		c.mu.Lock()
		lose := c.dropped < c.drop
		if lose {
			c.dropped++
		}
		c.mu.Unlock()
		if !lose {
			return n, addr, nil
		}
	}
}

// ConnConfig parameterizes a lossy Conn. Probabilities are per-datagram in
// [0, 1]; draws come from a seeded generator, so a single-reader serve loop
// sees a reproducible loss pattern for a fixed seed.
type ConnConfig struct {
	// Seed drives every loss/corruption/duplication draw.
	Seed uint64
	// RxDrop is the probability an inbound datagram is silently lost.
	RxDrop float64
	// RxCorrupt is the probability an inbound datagram has one random bit
	// flipped — the wire-level damage a checksumless UDP payload carries
	// straight into the decoder.
	RxCorrupt float64
	// TxDrop is the probability an outbound datagram is silently lost
	// (reported as written, as a congested network would).
	TxDrop float64
	// TxDup is the probability an outbound datagram is sent twice — the
	// duplication clients must tolerate by request ID.
	TxDup float64
}

// ConnStats counts the faults a Conn has injected.
type ConnStats struct {
	RxDropped, RxCorrupted, TxDropped, TxDuplicated uint64
}

// Conn wraps a net.PacketConn with seeded, per-datagram network faults:
// inbound drop and bit corruption, outbound drop and duplication. It
// generalizes the ad-hoc lossy wrappers the lifecycle tests grew, as one
// reusable chaos component.
type Conn struct {
	net.PacketConn

	mu    sync.Mutex // guards rng and stats
	rng   *rand.Rand
	cfg   ConnConfig
	stats ConnStats
}

// NewConn wraps pc with the configured fault behaviour.
func NewConn(pc net.PacketConn, cfg ConnConfig) *Conn {
	return &Conn{PacketConn: pc, rng: rand.New(rand.NewPCG(cfg.Seed, 0xc044)), cfg: cfg}
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ReadFrom implements net.PacketConn: datagrams may be dropped (the read
// retries for the next one, as the kernel would simply never surface a lost
// packet) or have one bit flipped.
func (c *Conn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		c.mu.Lock()
		if c.rng.Float64() < c.cfg.RxDrop {
			c.stats.RxDropped++
			c.mu.Unlock()
			continue
		}
		if n > 0 && c.rng.Float64() < c.cfg.RxCorrupt {
			pos := c.rng.IntN(n * 8)
			p[pos/8] ^= 1 << (pos % 8)
			c.stats.RxCorrupted++
		}
		c.mu.Unlock()
		return n, addr, nil
	}
}

// WriteTo implements net.PacketConn: datagrams may be silently dropped
// (reported as sent) or duplicated.
func (c *Conn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	drop := c.rng.Float64() < c.cfg.TxDrop
	dup := !drop && c.rng.Float64() < c.cfg.TxDup
	if drop {
		c.stats.TxDropped++
	}
	if dup {
		c.stats.TxDuplicated++
	}
	c.mu.Unlock()
	if drop {
		return len(p), nil
	}
	n, err := c.PacketConn.WriteTo(p, addr)
	if err != nil {
		return n, err
	}
	if dup {
		if _, derr := c.PacketConn.WriteTo(p, addr); derr != nil {
			return n, derr
		}
	}
	return n, nil
}
