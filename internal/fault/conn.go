package fault

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lightning-smartnic/lightning/internal/netbatch"
)

// Addr is the placeholder net.Addr the stub conns report.
type Addr struct{}

// Network implements net.Addr.
func (Addr) Network() string { return "udp" }

// String implements net.Addr.
func (Addr) String() string { return "fault:0" }

// timeoutError is the net.Error the stub conns return when their queue runs
// dry, so serve loops treat it exactly like a read-deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "fault: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrTimeout is the timeout error StubConn returns once its queue is empty.
var ErrTimeout net.Error = timeoutError{}

// StubConn feeds a fixed set of datagrams to a serve loop as fast as it can
// read them, then times out forever — a deterministic stand-in for a socket
// under burst load. Writes are recorded, and can be made to fail (an
// unreachable client) or stall (a slow downstream holding a worker busy).
// Safe for concurrent use by a reader and several writers.
type StubConn struct {
	mu    sync.Mutex
	queue [][]byte

	writes        atomic.Uint64
	deadlineCalls atomic.Uint64

	// sent records outbound datagram payloads when RecordWrites is set.
	sent [][]byte

	// FailWrites makes every WriteTo return an error. Set before serving.
	FailWrites bool
	// WriteDelay stalls each WriteTo, holding the calling worker busy. Set
	// before serving.
	WriteDelay time.Duration
	// ReadErr, when set, is returned by ReadFrom once the queue is empty —
	// a fatal (non-timeout) socket failure under a serve loop, where the
	// default empty-queue behaviour is a timeout. Set before serving.
	ReadErr error
	// RecordWrites keeps a copy of every successful outbound datagram for
	// Sent() — the differential wire tests compare response byte streams
	// with it. Set before serving.
	RecordWrites bool
	// MaxReadBatch caps how many datagrams one ReadBatch call drains
	// (0 = no cap): rx-batch-size distribution tests shape bursts with it.
	MaxReadBatch int
}

// NewStubConn builds a stub conn preloaded with the given datagrams.
func NewStubConn(datagrams ...[][]byte) *StubConn {
	c := &StubConn{}
	for _, batch := range datagrams {
		c.queue = append(c.queue, batch...)
	}
	return c
}

// Enqueue appends one datagram to the read queue.
func (c *StubConn) Enqueue(d []byte) {
	c.mu.Lock()
	c.queue = append(c.queue, d)
	c.mu.Unlock()
}

// Writes returns the count of successful WriteTo calls (batched writes
// count once per message, so the tally stays one-per-response either way).
func (c *StubConn) Writes() uint64 { return c.writes.Load() }

// DeadlineCalls returns how many times SetReadDeadline was armed — the
// per-batch-deadline regression test's probe.
func (c *StubConn) DeadlineCalls() uint64 { return c.deadlineCalls.Load() }

// Sent returns copies of the recorded outbound datagrams (RecordWrites).
func (c *StubConn) Sent() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.sent))
	for i, d := range c.sent {
		out[i] = append([]byte(nil), d...)
	}
	return out
}

// record appends one outbound payload under mu when recording is on.
func (c *StubConn) record(p []byte) {
	if !c.RecordWrites {
		return
	}
	c.mu.Lock()
	c.sent = append(c.sent, append([]byte(nil), p...))
	c.mu.Unlock()
}

// ReadBatch implements netbatch's native batch interface: it drains up to
// len(ms) queued datagrams in one call (deterministically — whatever is
// queued right now is one "burst"), with the same empty-queue semantics as
// ReadFrom: ReadErr if set, otherwise a timeout after a short sleep.
func (c *StubConn) ReadBatch(ms []netbatch.Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	if len(c.queue) == 0 {
		err := c.ReadErr
		c.mu.Unlock()
		if err != nil {
			return 0, err
		}
		time.Sleep(time.Millisecond)
		return 0, ErrTimeout
	}
	n := 0
	limit := len(ms)
	if c.MaxReadBatch > 0 && c.MaxReadBatch < limit {
		limit = c.MaxReadBatch
	}
	for n < limit && len(c.queue) > 0 {
		d := c.queue[0]
		c.queue = c.queue[1:]
		ms[n].N = copy(ms[n].Buf, d)
		ms[n].Addr = Addr{}
		n++
	}
	c.mu.Unlock()
	return n, nil
}

// WriteBatch implements netbatch's native batch interface with WriteTo's
// fault semantics per message: the first refused write stops the batch and
// reports how many preceded it.
func (c *StubConn) WriteBatch(ms []netbatch.Message) (int, error) {
	for i := range ms {
		if c.WriteDelay > 0 {
			time.Sleep(c.WriteDelay)
		}
		if c.FailWrites {
			return i, errors.New("fault: write refused")
		}
		c.record(ms[i].Buf[:ms[i].N])
		c.writes.Add(1)
	}
	return len(ms), nil
}

// ReadFrom implements net.PacketConn: it pops the next queued datagram, or
// times out (after a short sleep, so cancelled serve loops spin gently) —
// unless ReadErr is set, in which case the empty queue surfaces that fatal
// error instead.
func (c *StubConn) ReadFrom(p []byte) (int, net.Addr, error) {
	c.mu.Lock()
	if len(c.queue) == 0 {
		err := c.ReadErr
		c.mu.Unlock()
		if err != nil {
			return 0, nil, err
		}
		time.Sleep(time.Millisecond)
		return 0, nil, ErrTimeout
	}
	d := c.queue[0]
	c.queue = c.queue[1:]
	c.mu.Unlock()
	return copy(p, d), Addr{}, nil
}

// WriteTo implements net.PacketConn.
func (c *StubConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	if c.WriteDelay > 0 {
		time.Sleep(c.WriteDelay)
	}
	if c.FailWrites {
		return 0, errors.New("fault: write refused")
	}
	c.record(p)
	c.writes.Add(1)
	return len(p), nil
}

// Close implements net.PacketConn.
func (c *StubConn) Close() error { return nil }

// LocalAddr implements net.PacketConn.
func (c *StubConn) LocalAddr() net.Addr { return Addr{} }

// SetDeadline implements net.PacketConn.
func (c *StubConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.PacketConn, counting each arm so tests
// can assert the serve loop's once-per-batch deadline cadence.
func (c *StubConn) SetReadDeadline(time.Time) error {
	c.deadlineCalls.Add(1)
	return nil
}

// SetWriteDeadline implements net.PacketConn.
func (c *StubConn) SetWriteDeadline(time.Time) error { return nil }

// DropRxConn wraps a real socket and silently discards the first n
// datagrams it reads — deterministic fragment loss in front of a server.
type DropRxConn struct {
	net.PacketConn
	mu      sync.Mutex
	drop    int
	dropped int
}

// DropFirst wraps pc so its first n reads are discarded.
func DropFirst(pc net.PacketConn, n int) *DropRxConn {
	return &DropRxConn{PacketConn: pc, drop: n}
}

// Dropped returns how many datagrams have been discarded so far.
func (c *DropRxConn) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// ReadFrom implements net.PacketConn, losing the first `drop` datagrams.
func (c *DropRxConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		c.mu.Lock()
		lose := c.dropped < c.drop
		if lose {
			c.dropped++
		}
		c.mu.Unlock()
		if !lose {
			return n, addr, nil
		}
	}
}

// ConnConfig parameterizes a lossy Conn. Probabilities are per-datagram in
// [0, 1]; draws come from a seeded generator, so a single-reader serve loop
// sees a reproducible loss pattern for a fixed seed.
type ConnConfig struct {
	// Seed drives every loss/corruption/duplication/jitter draw.
	Seed uint64
	// RxDrop is the probability an inbound datagram is silently lost.
	RxDrop float64
	// RxCorrupt is the probability an inbound datagram has one random bit
	// flipped — the wire-level damage a checksumless UDP payload carries
	// straight into the decoder.
	RxCorrupt float64
	// TxDrop is the probability an outbound datagram is silently lost
	// (reported as written, as a congested network would).
	TxDrop float64
	// TxDup is the probability an outbound datagram is sent twice — the
	// duplication clients must tolerate by request ID.
	TxDup float64
	// RxLatency delays each delivered inbound datagram; RxJitter adds a
	// seeded uniform draw from [0, RxJitter) on top — the multi-hop latency
	// model a cluster's slow-node faults need. TxLatency/TxJitter do the
	// same for sends. The delay sequence is reproducible for a fixed Seed.
	RxLatency, RxJitter time.Duration
	TxLatency, TxJitter time.Duration
}

// ConnStats counts the faults a Conn has injected.
type ConnStats struct {
	RxDropped, RxCorrupted, TxDropped, TxDuplicated uint64
	// TxCorrupted counts outbound datagrams damaged by CorruptNextTx —
	// the corrupted-partials fault of the cluster chaos suite.
	TxCorrupted uint64
	// Blackholed counts datagrams (both directions) lost to a partition
	// (Blackhole(true)).
	Blackholed uint64
}

// Conn wraps a net.PacketConn with seeded, per-datagram network faults:
// inbound drop and bit corruption, outbound drop and duplication, rx/tx
// latency with jitter, and runtime partition (Blackhole) and targeted
// corruption (CorruptNextTx) controls. It generalizes the ad-hoc lossy
// wrappers the lifecycle tests grew, as one reusable chaos component — and
// is the network surface node-level faults (NodeSlow, NodePartition,
// NodeCorrupt) act on.
type Conn struct {
	net.PacketConn

	mu    sync.Mutex // guards rng, cfg, stats and the runtime fault state
	rng   *rand.Rand
	cfg   ConnConfig
	stats ConnStats
	// blackhole, while set, loses every datagram in both directions — a
	// network partition around this endpoint.
	blackhole bool
	// corruptTx flips one bit in each of the next corruptTx outbound
	// datagrams.
	corruptTx int
}

// NewConn wraps pc with the configured fault behaviour.
func NewConn(pc net.PacketConn, cfg ConnConfig) *Conn {
	return &Conn{PacketConn: pc, rng: rand.New(rand.NewPCG(cfg.Seed, 0xc044)), cfg: cfg}
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Blackhole partitions (or heals, with on=false) this endpoint: while
// partitioned every datagram in both directions is silently lost, exactly as
// a switch dropping the node's traffic would behave.
func (c *Conn) Blackhole(on bool) {
	c.mu.Lock()
	c.blackhole = on
	c.mu.Unlock()
}

// SetLatency replaces the rx/tx latency and jitter injection at runtime —
// a slow-node fault arriving (or healing) mid-run.
func (c *Conn) SetLatency(rxLat, rxJit, txLat, txJit time.Duration) {
	c.mu.Lock()
	c.cfg.RxLatency, c.cfg.RxJitter = rxLat, rxJit
	c.cfg.TxLatency, c.cfg.TxJitter = txLat, txJit
	c.mu.Unlock()
}

// CorruptNextTx flips one seeded-random bit in each of the next n outbound
// datagrams — a node emitting corrupted partials while still responsive.
func (c *Conn) CorruptNextTx(n int) {
	c.mu.Lock()
	c.corruptTx += n
	c.mu.Unlock()
}

// delayLocked draws one latency+jitter delay; caller holds mu, the sleep
// happens outside it.
func (c *Conn) delayLocked(lat, jit time.Duration) time.Duration {
	d := lat
	if jit > 0 {
		d += time.Duration(c.rng.Int64N(int64(jit)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ReadFrom implements net.PacketConn: datagrams may be dropped (the read
// retries for the next one, as the kernel would simply never surface a lost
// packet), have one bit flipped, or be delivered late (RxLatency/RxJitter).
func (c *Conn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		c.mu.Lock()
		if c.blackhole {
			c.stats.Blackholed++
			c.mu.Unlock()
			continue
		}
		if c.rng.Float64() < c.cfg.RxDrop {
			c.stats.RxDropped++
			c.mu.Unlock()
			continue
		}
		if n > 0 && c.rng.Float64() < c.cfg.RxCorrupt {
			pos := c.rng.IntN(n * 8)
			p[pos/8] ^= 1 << (pos % 8)
			c.stats.RxCorrupted++
		}
		delay := c.delayLocked(c.cfg.RxLatency, c.cfg.RxJitter)
		c.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		return n, addr, nil
	}
}

// WriteTo implements net.PacketConn: datagrams may be silently dropped
// (reported as sent), duplicated, bit-corrupted (CorruptNextTx), or delayed
// (TxLatency/TxJitter).
func (c *Conn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	if c.blackhole {
		c.stats.Blackholed++
		c.mu.Unlock()
		return len(p), nil
	}
	drop := c.rng.Float64() < c.cfg.TxDrop
	dup := !drop && c.rng.Float64() < c.cfg.TxDup
	if drop {
		c.stats.TxDropped++
	}
	if dup {
		c.stats.TxDuplicated++
	}
	corrupt := -1
	if !drop && c.corruptTx > 0 && len(p) > 0 {
		c.corruptTx--
		c.stats.TxCorrupted++
		corrupt = c.rng.IntN(len(p) * 8)
	}
	delay := time.Duration(0)
	if !drop {
		delay = c.delayLocked(c.cfg.TxLatency, c.cfg.TxJitter)
	}
	c.mu.Unlock()
	if drop {
		return len(p), nil
	}
	out := p
	if corrupt >= 0 {
		// Corrupt a copy: WriteTo must not damage the caller's buffer (the
		// client retries with it).
		out = append([]byte(nil), p...)
		out[corrupt/8] ^= 1 << (corrupt % 8)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := c.PacketConn.WriteTo(out, addr)
	if err != nil {
		return n, err
	}
	if dup {
		if _, derr := c.PacketConn.WriteTo(out, addr); derr != nil {
			return n, derr
		}
	}
	return n, nil
}
