package fault

import (
	"sort"
	"sync"
	"time"
)

// Node-level faults: the cluster-plane mirror of the shard-level Fault
// machinery. Where a Fault corrupts one shard's hardware inside a NIC, a
// NodeFault degrades a whole serving node as the network sees it — crash,
// partition, slow node, corrupted partials — through the surfaces a cluster
// harness owns: the node's fault.Conn and a kill switch for its process (or
// in-process serve loop). Same discipline as the shard plane: logical-step
// plans, seeded scatter, no wall clock in the schedule, so a cluster chaos
// run is a regression test.

// NodeTarget bundles the surfaces a node fault can act on. Either may be nil
// when the harness lacks that surface; faults must check.
type NodeTarget struct {
	// Conn is the fault wrapper around the node's serving socket.
	Conn *Conn
	// Crash terminates the node's serve loop (kill -9 for an external
	// process, context cancel for an in-process one).
	Crash func() error
}

// NodeFault is one injectable node-level fault.
type NodeFault interface {
	// Name identifies the fault in logs and NodeFired records.
	Name() string
	// ApplyNode injects the fault into the node's surfaces.
	ApplyNode(t NodeTarget) error
}

// NodeCrash kills the node outright — the fail-stop failure a coordinator
// must re-plan around.
type NodeCrash struct{}

// Name implements NodeFault.
func (NodeCrash) Name() string { return "node-crash" }

// ApplyNode implements NodeFault.
func (NodeCrash) ApplyNode(t NodeTarget) error {
	if t.Crash == nil {
		return errNoSurface("node-crash", "crash hook")
	}
	return t.Crash()
}

// NodePartition blackholes the node's traffic in both directions (On=true),
// or heals the partition (On=false). The node itself keeps running — the
// gray failure where health must be judged from outside.
type NodePartition struct{ On bool }

// Name implements NodeFault.
func (f NodePartition) Name() string {
	if f.On {
		return "node-partition"
	}
	return "node-partition-heal"
}

// ApplyNode implements NodeFault.
func (f NodePartition) ApplyNode(t NodeTarget) error {
	if t.Conn == nil {
		return errNoSurface(f.Name(), "fault.Conn")
	}
	t.Conn.Blackhole(f.On)
	return nil
}

// NodeSlow injects rx/tx latency plus seeded jitter on the node's socket —
// the straggler that blows per-hop deadlines without ever failing a query
// outright. Zero values heal a previously slow node.
type NodeSlow struct {
	Latency, Jitter time.Duration
}

// Name implements NodeFault.
func (NodeSlow) Name() string { return "node-slow" }

// ApplyNode implements NodeFault.
func (f NodeSlow) ApplyNode(t NodeTarget) error {
	if t.Conn == nil {
		return errNoSurface("node-slow", "fault.Conn")
	}
	t.Conn.SetLatency(f.Latency, f.Jitter, f.Latency, f.Jitter)
	return nil
}

// NodeCorrupt bit-flips the node's next N outbound datagrams — well-formed
// channel, corrupted partials. Downstream decode failures (or known-answer
// probe mismatches) are how a coordinator is supposed to catch it.
type NodeCorrupt struct{ N int }

// Name implements NodeFault.
func (NodeCorrupt) Name() string { return "node-corrupt" }

// ApplyNode implements NodeFault.
func (f NodeCorrupt) ApplyNode(t NodeTarget) error {
	if t.Conn == nil {
		return errNoSurface("node-corrupt", "fault.Conn")
	}
	n := f.N
	if n <= 0 {
		n = 1
	}
	t.Conn.CorruptNextTx(n)
	return nil
}

// NodeEvent schedules a node fault at a logical plan step.
type NodeEvent struct {
	// Step is the plan-clock tick at which the event fires.
	Step uint64
	// Node selects which cluster node receives the fault.
	Node int
	// Fault is the fault to inject.
	Fault NodeFault
}

// NodePlan is a deterministic node-fault schedule, the cluster mirror of
// Plan. Immutable once handed to a NodeRunner.
type NodePlan struct {
	events []NodeEvent
}

// NewNodePlan returns an empty node-fault plan.
func NewNodePlan() *NodePlan { return &NodePlan{} }

// At schedules a fault on a node at a plan step and returns the plan for
// chaining. Events keep their insertion order within a step.
func (p *NodePlan) At(step uint64, node int, f NodeFault) *NodePlan {
	p.events = append(p.events, NodeEvent{Step: step, Node: node, Fault: f})
	return p
}

// Events returns the plan's events sorted by step (stable, so same-step
// events keep insertion order).
func (p *NodePlan) Events() []NodeEvent {
	out := append([]NodeEvent(nil), p.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// NodeApplier injects a node fault into one cluster node's surfaces. The
// cluster chaos harness implements it over its per-node NodeTargets.
type NodeApplier interface {
	InjectNodeFault(node int, f NodeFault) error
}

// NodeFired records one node event's injection outcome.
type NodeFired struct {
	Event NodeEvent
	// Err is the injection error, if any. The runner keeps going, as the
	// shard-level Runner does.
	Err error
}

// NodeRunner binds a node plan to an applier and fires events as its logical
// clock advances — the caller owns the clock (per completed query, per test
// phase). Safe for concurrent use.
type NodeRunner struct {
	mu      sync.Mutex
	events  []NodeEvent
	applier NodeApplier
	step    uint64
	next    int
	fired   []NodeFired
}

// NewNodeRunner prepares a node plan for execution against an applier.
// Events at step 0 fire on the first Advance.
func NewNodeRunner(p *NodePlan, a NodeApplier) *NodeRunner {
	return &NodeRunner{events: p.Events(), applier: a}
}

// Advance moves the plan clock forward n ticks and injects every event whose
// step the clock has now reached, in step order, returning the events fired
// by this call.
func (r *NodeRunner) Advance(n uint64) []NodeFired {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.step += n
	var out []NodeFired
	for r.next < len(r.events) && r.events[r.next].Step <= r.step {
		ev := r.events[r.next]
		r.next++
		f := NodeFired{Event: ev, Err: r.applier.InjectNodeFault(ev.Node, ev.Fault)}
		r.fired = append(r.fired, f)
		out = append(out, f)
	}
	return out
}

// Step advances the plan clock one tick.
func (r *NodeRunner) Step() []NodeFired { return r.Advance(1) }

// Clock returns the current plan-clock value.
func (r *NodeRunner) Clock() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.step
}

// Fired returns every event injected so far, in firing order.
func (r *NodeRunner) Fired() []NodeFired {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]NodeFired(nil), r.fired...)
}

// Pending returns the count of events not yet fired.
func (r *NodeRunner) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events) - r.next
}
