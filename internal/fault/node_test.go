package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// recordingNodeApplier records injections and can fail selected nodes.
type recordingNodeApplier struct {
	got     []NodeEvent
	failOn  int
	failErr error
}

func (a *recordingNodeApplier) InjectNodeFault(node int, f NodeFault) error {
	a.got = append(a.got, NodeEvent{Node: node, Fault: f})
	if a.failErr != nil && node == a.failOn {
		return a.failErr
	}
	return nil
}

func TestNodePlanEventsSortedStable(t *testing.T) {
	p := NewNodePlan().
		At(5, 0, NodeCrash{}).
		At(1, 1, NodePartition{On: true}).
		At(5, 2, NodeSlow{Latency: time.Millisecond}).
		At(1, 3, NodePartition{On: false})
	ev := p.Events()
	steps := []uint64{1, 1, 5, 5}
	nodes := []int{1, 3, 0, 2} // same-step events keep insertion order
	for i, e := range ev {
		if e.Step != steps[i] || e.Node != nodes[i] {
			t.Fatalf("event %d = step %d node %d, want step %d node %d",
				i, e.Step, e.Node, steps[i], nodes[i])
		}
	}
}

func TestNodeRunnerAdvance(t *testing.T) {
	p := NewNodePlan().
		At(0, 0, NodeCrash{}).
		At(2, 1, NodePartition{On: true}).
		At(2, 2, NodeCorrupt{N: 3}).
		At(5, 0, NodeSlow{})
	a := &recordingNodeApplier{}
	r := NewNodeRunner(p, a)
	if r.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", r.Pending())
	}
	// Step-0 events fire on the first Advance.
	if fired := r.Advance(1); len(fired) != 1 || fired[0].Event.Node != 0 {
		t.Fatalf("first advance fired %+v", fired)
	}
	// Both step-2 events fire together once the clock reaches 2, in
	// insertion order.
	fired := r.Advance(1)
	if len(fired) != 2 || fired[0].Event.Node != 1 || fired[1].Event.Node != 2 {
		t.Fatalf("step 2 fired %+v", fired)
	}
	if r.Clock() != 2 || r.Pending() != 1 {
		t.Fatalf("clock %d pending %d, want 2/1", r.Clock(), r.Pending())
	}
	// A big jump drains the rest; Fired holds everything in firing order.
	if fired := r.Advance(10); len(fired) != 1 {
		t.Fatalf("final advance fired %+v", fired)
	}
	if all := r.Fired(); len(all) != 4 || len(a.got) != 4 {
		t.Fatalf("Fired %d, applied %d, want 4/4", len(all), len(a.got))
	}
}

func TestNodeRunnerKeepsGoingPastErrors(t *testing.T) {
	boom := errors.New("no such node")
	a := &recordingNodeApplier{failOn: 1, failErr: boom}
	r := NewNodeRunner(NewNodePlan().At(1, 1, NodeCrash{}).At(1, 0, NodeCrash{}), a)
	fired := r.Advance(1)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want both despite the error", len(fired))
	}
	if !errors.Is(fired[0].Err, boom) || fired[1].Err != nil {
		t.Fatalf("errors = [%v, %v], want [boom, nil]", fired[0].Err, fired[1].Err)
	}
}

// TestNodeFaultsNeedTheirSurfaces: every node fault must refuse a target
// lacking the surface it acts on, instead of panicking or silently no-opping.
func TestNodeFaultsNeedTheirSurfaces(t *testing.T) {
	for _, f := range []NodeFault{
		NodeCrash{}, NodePartition{On: true}, NodeSlow{Latency: time.Millisecond}, NodeCorrupt{N: 1},
	} {
		if err := f.ApplyNode(NodeTarget{}); err == nil {
			t.Errorf("%s applied to an empty target without error", f.Name())
		}
	}
}

func TestNodeCrashCallsHook(t *testing.T) {
	crashed := false
	tgt := NodeTarget{Crash: func() error { crashed = true; return nil }}
	if err := (NodeCrash{}).ApplyNode(tgt); err != nil || !crashed {
		t.Fatalf("crash hook: called=%v err=%v", crashed, err)
	}
}

// TestNodePartitionTogglesBlackhole drives the partition fault through a
// Conn and watches datagrams vanish, then flow again after the heal.
func TestNodePartitionTogglesBlackhole(t *testing.T) {
	inner := &memConn{}
	c := NewConn(inner, ConnConfig{Seed: 1})
	tgt := NodeTarget{Conn: c}
	if err := (NodePartition{On: true}).ApplyNode(tgt); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo([]byte{1}, Addr{}); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.written()); got != 0 {
		t.Fatalf("partitioned conn delivered %d datagrams", got)
	}
	if st := c.Stats(); st.Blackholed != 1 {
		t.Fatalf("Blackholed = %d, want 1", st.Blackholed)
	}
	if err := (NodePartition{On: false}).ApplyNode(tgt); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo([]byte{2}, Addr{}); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.written()); got != 1 {
		t.Fatalf("healed conn delivered %d datagrams, want 1", got)
	}
}

// TestNodeSlowInjectsLatency: the slow-node fault must actually delay the
// conn's traffic (lower-bound check only, to stay robust on loaded CI).
func TestNodeSlowInjectsLatency(t *testing.T) {
	inner := &memConn{}
	c := NewConn(inner, ConnConfig{Seed: 2})
	if err := (NodeSlow{Latency: 2 * time.Millisecond}).ApplyNode(NodeTarget{Conn: c}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.WriteTo([]byte{byte(i)}, Addr{}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 writes at 2ms injected latency took %v, want >= 10ms", elapsed)
	}
	// Zero values heal the straggler.
	if err := (NodeSlow{}).ApplyNode(NodeTarget{Conn: c}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeCorruptDamagesNextWrites: the corrupted-partials fault flips one
// bit in each of the next N sends — in a copy, never the caller's buffer —
// and defaults N to 1.
func TestNodeCorruptDamagesNextWrites(t *testing.T) {
	inner := &memConn{}
	c := NewConn(inner, ConnConfig{Seed: 3})
	if err := (NodeCorrupt{N: 2}).ApplyNode(NodeTarget{Conn: c}); err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xAA, 0xAA, 0xAA, 0xAA}
	for i := 0; i < 3; i++ {
		buf := append([]byte(nil), payload...)
		if _, err := c.WriteTo(buf, Addr{}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("write %d damaged the caller's buffer", i)
		}
	}
	wrote := inner.written()
	if len(wrote) != 3 {
		t.Fatalf("wrote %d datagrams, want 3", len(wrote))
	}
	for i := 0; i < 2; i++ {
		if diff := bitDiff(wrote[i], payload); diff != 1 {
			t.Errorf("corrupted write %d differs by %d bits, want exactly 1", i, diff)
		}
	}
	if !bytes.Equal(wrote[2], payload) {
		t.Error("third write corrupted past the N=2 budget")
	}
	if st := c.Stats(); st.TxCorrupted != 2 {
		t.Fatalf("TxCorrupted = %d, want 2", st.TxCorrupted)
	}
	// Default budget: N <= 0 means one datagram.
	if err := (NodeCorrupt{}).ApplyNode(NodeTarget{Conn: c}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(append([]byte(nil), payload...), Addr{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.TxCorrupted != 3 {
		t.Fatalf("TxCorrupted after default-N fault = %d, want 3", st.TxCorrupted)
	}
}

// bitDiff counts differing bits between equal-length byte slices.
func bitDiff(a, b []byte) int {
	if len(a) != len(b) {
		return -1
	}
	n := 0
	for i := range a {
		for x := a[i] ^ b[i]; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}
