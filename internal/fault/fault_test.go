package fault

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
	"github.com/lightning-smartnic/lightning/internal/mem"
	"github.com/lightning-smartnic/lightning/internal/photonic"
)

func newTestCore(t *testing.T) *photonic.Core {
	t.Helper()
	c, err := photonic.NewCore(2, nil)
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	return c
}

// recordingApplier records injections instead of touching hardware.
type recordingApplier struct {
	mu    sync.Mutex
	calls []Event
	fail  func(shard int, f Fault) error
}

func (a *recordingApplier) InjectFault(shard int, f Fault) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls = append(a.calls, Event{Shard: shard, Fault: f})
	if a.fail != nil {
		return a.fail(shard, f)
	}
	return nil
}

func TestPlanEventsSortedStable(t *testing.T) {
	p := NewPlan().
		At(30, 0, DeadLane{Lane: 0}).
		At(10, 1, LaserSag{Factor: 0.5}).
		At(10, 2, BiasRunaway{Lane: 0, DeltaVolts: 1}).
		At(5, 0, DeadLane{Lane: 1})
	ev := p.Events()
	steps := make([]uint64, len(ev))
	for i, e := range ev {
		steps[i] = e.Step
	}
	if want := []uint64{5, 10, 10, 30}; !reflect.DeepEqual(steps, want) {
		t.Fatalf("steps = %v, want %v", steps, want)
	}
	// Same-step events keep insertion order: LaserSag (shard 1) before
	// BiasRunaway (shard 2).
	if ev[1].Shard != 1 || ev[2].Shard != 2 {
		t.Fatalf("same-step order not stable: shards %d, %d", ev[1].Shard, ev[2].Shard)
	}
}

func TestScatterDeterministic(t *testing.T) {
	mk := func(i int) Fault { return BiasRunaway{Lane: i % 2, DeltaVolts: 1} }
	a := NewPlan().Scatter(7, 20, 1000, 4, mk).Events()
	b := NewPlan().Scatter(7, 20, 1000, 4, mk).Events()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := NewPlan().Scatter(8, 20, 1000, 4, mk).Events()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	for _, e := range a {
		if e.Step >= 1000 {
			t.Fatalf("event step %d outside window", e.Step)
		}
		if e.Shard < 0 || e.Shard >= 4 {
			t.Fatalf("event shard %d outside range", e.Shard)
		}
	}
}

func TestRunnerFiresInStepOrder(t *testing.T) {
	p := NewPlan().
		At(0, 0, DeadLane{Lane: 0}).
		At(3, 1, LaserSag{Factor: 0.5}).
		At(3, 2, DeadLane{Lane: 1}).
		At(10, 0, BiasRunaway{Lane: 0, DeltaVolts: 2})
	a := &recordingApplier{}
	r := NewRunner(p, a)

	if got := r.Advance(1); len(got) != 1 || got[0].Event.Step != 0 {
		t.Fatalf("Advance(1) fired %v, want the step-0 event", got)
	}
	if got := r.Advance(1); len(got) != 0 {
		t.Fatalf("Advance to 2 fired %v, want none", got)
	}
	if got := r.Advance(5); len(got) != 2 {
		t.Fatalf("Advance to 7 fired %d events, want both step-3 events", len(got))
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", r.Pending())
	}
	if got := r.Advance(100); len(got) != 1 || got[0].Event.Step != 10 {
		t.Fatalf("final Advance fired %v, want the step-10 event", got)
	}
	if r.Clock() != 107 {
		t.Fatalf("Clock = %d, want 107", r.Clock())
	}
	if len(r.Fired()) != 4 || len(a.calls) != 4 {
		t.Fatalf("fired %d / applied %d, want 4 / 4", len(r.Fired()), len(a.calls))
	}
}

func TestRunnerKeepsGoingPastInjectionErrors(t *testing.T) {
	p := NewPlan().
		At(1, 0, DeadLane{Lane: 99}).
		At(2, 0, LaserSag{Factor: 0.5})
	core := newTestCore(t)
	a := &recordingApplier{fail: func(shard int, f Fault) error {
		return f.Apply(Target{Core: core})
	}}
	fired := NewRunner(p, a).Advance(5)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0].Err == nil {
		t.Fatal("misaimed dead-lane fault should report an error")
	}
	if fired[1].Err != nil {
		t.Fatalf("laser sag errored: %v", fired[1].Err)
	}
}

func TestBiasRunawayShiftsReadings(t *testing.T) {
	core := newTestCore(t)
	a := []fixed.Code{128, 128}
	b := []fixed.Code{128, 128}
	before := core.Step(a, b)
	if err := (BiasRunaway{Lane: 0, DeltaVolts: 2}).Apply(Target{Core: core}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	after := core.Step(a, b)
	if math.Abs(after-before) < 1 {
		t.Fatalf("bias runaway barely moved the reading: %.2f -> %.2f", before, after)
	}
}

// TestBiasRunawayRelockHeals is the calibration-LUT regression pair to
// TestBiasRunawayShiftsReadings: between injection and relock every reading
// flows through the live (corrupted) transfer — the baked fast path must not
// serve stale healthy values — and Relock's re-bake restores readings to the
// healthy operating point.
func TestBiasRunawayRelockHeals(t *testing.T) {
	core := newTestCore(t)
	a := []fixed.Code{200, 150}
	b := []fixed.Code{180, 210}
	before := core.Step(a, b)
	if err := (BiasRunaway{Lane: 0, DeltaVolts: 1.5}).Apply(Target{Core: core}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	corrupted := core.Step(a, b)
	if math.Abs(corrupted-before) < 1 {
		t.Fatalf("bias runaway masked by the transmission LUTs: %.2f -> %.2f", before, corrupted)
	}
	if err := core.Relock(); err != nil {
		t.Fatalf("Relock: %v", err)
	}
	healed := core.Step(a, b)
	if math.Abs(healed-before) > 1 {
		t.Fatalf("relock did not heal bias runaway: %.2f, want ≈ %.2f", healed, before)
	}
}

func TestLaserSagShrinksReadingsAndRelockHeals(t *testing.T) {
	core := newTestCore(t)
	a := []fixed.Code{255, 255}
	b := []fixed.Code{255, 255}
	before := core.Step(a, b)
	if err := (LaserSag{Factor: 0.5}).Apply(Target{Core: core}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	sagged := core.Step(a, b)
	if sagged > before*0.7 {
		t.Fatalf("sagged reading %.2f not clearly below %.2f", sagged, before)
	}
	if err := core.Relock(); err != nil {
		t.Fatalf("Relock: %v", err)
	}
	healed := core.Step(a, b)
	if math.Abs(healed-before) > 1 {
		t.Fatalf("relock did not heal sag: %.2f, want ≈ %.2f", healed, before)
	}
}

func TestLaserSagRejectsNonPositiveFactor(t *testing.T) {
	if err := (LaserSag{Factor: 0}).Apply(Target{Core: newTestCore(t)}); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

func TestDeadLaneZeroesLaneAndBlocksRelock(t *testing.T) {
	core := newTestCore(t)
	if err := (DeadLane{Lane: 1}).Apply(Target{Core: core}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !core.Lanes()[1].Dead() {
		t.Fatal("lane 1 not dead after DeadLane")
	}
	if err := core.Relock(); err == nil {
		t.Fatal("Relock succeeded on a core with a dead lane")
	}
}

func TestDriftBurstDegradesAndIsDeterministic(t *testing.T) {
	a := []fixed.Code{200, 200}
	b := []fixed.Code{200, 200}
	c1 := newTestCore(t)
	before := c1.Step(a, b)
	burst := DriftBurst{StepVolts: 0.05, Steps: 200, Seed: 11}
	if err := burst.Apply(Target{Core: c1}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	after1 := c1.Step(a, b)
	if math.Abs(after1-before) < 0.5 {
		t.Fatalf("drift burst barely moved the reading: %.2f -> %.2f", before, after1)
	}
	c2 := newTestCore(t)
	if err := burst.Apply(Target{Core: c2}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if after2 := c2.Step(a, b); after2 != after1 {
		t.Fatalf("same seed drifted differently: %.4f vs %.4f", after1, after2)
	}
}

func TestPhotonicFaultsNeedACore(t *testing.T) {
	for _, f := range []Fault{
		BiasRunaway{Lane: 0, DeltaVolts: 1},
		DriftBurst{StepVolts: 0.01, Steps: 1, Seed: 1},
		LaserSag{Factor: 0.5},
		DeadLane{Lane: 0},
	} {
		if err := f.Apply(Target{}); err == nil {
			t.Errorf("%s accepted a coreless target", f.Name())
		}
	}
}

func TestReadErrorBurstExhausts(t *testing.T) {
	d := mem.New(mem.DDR4Spec(), 1)
	if err := d.Store("w", []byte{1, 2, 3}); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := (ReadErrorBurst{Reads: 2}).Apply(Target{DRAM: d}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := d.Load("w"); ok {
			t.Fatalf("load %d succeeded during burst", i)
		}
	}
	if _, ok := d.Load("w"); !ok {
		t.Fatal("load failed after burst exhausted")
	}
	if d.FaultedReads() != 2 {
		t.Fatalf("FaultedReads = %d, want 2", d.FaultedReads())
	}
}

func TestBitFlipsCorruptCopyOnly(t *testing.T) {
	d := mem.New(mem.DDR4Spec(), 1)
	orig := make([]byte, 64)
	if err := d.Store("w", orig); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := (BitFlips{PerRead: 3, Seed: 5}).Apply(Target{DRAM: d}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	b, ok := d.Load("w")
	if !ok {
		t.Fatal("load failed")
	}
	flipped := 0
	for _, x := range b {
		for ; x != 0; x &= x - 1 {
			flipped++
		}
	}
	if flipped == 0 || flipped > 3 {
		t.Fatalf("flipped %d bits, want 1..3", flipped)
	}
	// Clearing the fault serves the pristine stored blob again.
	if err := (ClearMem{}).Apply(Target{DRAM: d}); err != nil {
		t.Fatalf("ClearMem: %v", err)
	}
	b, _ = d.Load("w")
	for i, x := range b {
		if x != 0 {
			t.Fatalf("stored blob mutated at byte %d", i)
		}
	}
}

func TestMemFaultsNeedADRAM(t *testing.T) {
	for _, f := range []Fault{ReadErrorBurst{Reads: 1}, BitFlips{PerRead: 1, Seed: 1}, ClearMem{}} {
		err := f.Apply(Target{})
		if err == nil {
			t.Errorf("%s accepted a DRAM-less target", f.Name())
		} else if !strings.Contains(err.Error(), "DRAM") {
			t.Errorf("%s error %q does not name the missing surface", f.Name(), err)
		}
	}
}
