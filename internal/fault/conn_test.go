package fault

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
)

// memConn is a loopback PacketConn backing the lossy-wrapper tests: reads
// pop a queue, writes append to a log.
type memConn struct {
	StubConn
	wmu   sync.Mutex
	wrote [][]byte
}

func (c *memConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	c.wmu.Lock()
	c.wrote = append(c.wrote, append([]byte(nil), p...))
	c.wmu.Unlock()
	return len(p), nil
}

func (c *memConn) written() [][]byte {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.wrote
}

func TestStubConnQueueThenTimeout(t *testing.T) {
	c := NewStubConn([][]byte{{1, 2}, {3}})
	c.Enqueue([]byte{4, 5, 6})
	buf := make([]byte, 16)
	for i, want := range [][]byte{{1, 2}, {3}, {4, 5, 6}} {
		n, addr, err := c.ReadFrom(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if addr == nil || !bytes.Equal(buf[:n], want) {
			t.Fatalf("read %d = %v, want %v", i, buf[:n], want)
		}
	}
	_, _, err := c.ReadFrom(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("drained read error = %v, want a net timeout", err)
	}
}

func TestStubConnWrites(t *testing.T) {
	c := NewStubConn()
	if _, err := c.WriteTo([]byte{1}, Addr{}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if c.Writes() != 1 {
		t.Fatalf("Writes = %d, want 1", c.Writes())
	}
	c.FailWrites = true
	if _, err := c.WriteTo([]byte{1}, Addr{}); err == nil {
		t.Fatal("FailWrites write succeeded")
	}
	if c.Writes() != 1 {
		t.Fatalf("failed write counted: Writes = %d", c.Writes())
	}
}

func TestDropFirst(t *testing.T) {
	inner := NewStubConn([][]byte{{1}, {2}, {3}, {4}})
	c := DropFirst(inner, 2)
	buf := make([]byte, 4)
	n, _, err := c.ReadFrom(buf)
	if err != nil || buf[0] != 3 {
		t.Fatalf("first surviving read = %v (n=%d, err=%v), want [3]", buf[:n], n, err)
	}
	if _, _, err := c.ReadFrom(buf); err != nil || buf[0] != 4 {
		t.Fatalf("second surviving read = %v, err=%v, want [4]", buf[:1], err)
	}
	if c.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", c.Dropped())
	}
}

func TestConnRxDropAndCorrupt(t *testing.T) {
	const datagrams = 400
	inner := NewStubConn()
	payload := []byte{0xAA, 0xAA, 0xAA, 0xAA}
	for i := 0; i < datagrams; i++ {
		inner.Enqueue(append([]byte(nil), payload...))
	}
	c := NewConn(inner, ConnConfig{Seed: 3, RxDrop: 0.25, RxCorrupt: 0.25})
	buf := make([]byte, 8)
	delivered, corrupted := 0, 0
	for {
		n, _, err := c.ReadFrom(buf)
		if err != nil {
			break // queue drained
		}
		delivered++
		if !bytes.Equal(buf[:n], payload) {
			corrupted++
		}
	}
	st := c.Stats()
	if int(st.RxDropped)+delivered != datagrams {
		t.Fatalf("dropped %d + delivered %d != %d sent", st.RxDropped, delivered, datagrams)
	}
	if st.RxDropped == 0 || st.RxCorrupted == 0 {
		t.Fatalf("no faults injected at 25%% rates: %+v", st)
	}
	if corrupted != int(st.RxCorrupted) {
		t.Fatalf("observed %d corrupted datagrams, stats say %d", corrupted, st.RxCorrupted)
	}
}

func TestConnTxDropAndDup(t *testing.T) {
	const datagrams = 400
	inner := &memConn{}
	c := NewConn(inner, ConnConfig{Seed: 9, TxDrop: 0.2, TxDup: 0.2})
	for i := 0; i < datagrams; i++ {
		if _, err := c.WriteTo([]byte{byte(i)}, Addr{}); err != nil {
			t.Fatalf("WriteTo %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.TxDropped == 0 || st.TxDuplicated == 0 {
		t.Fatalf("no tx faults injected at 20%% rates: %+v", st)
	}
	want := datagrams - int(st.TxDropped) + int(st.TxDuplicated)
	if got := len(inner.written()); got != want {
		t.Fatalf("inner conn saw %d writes, want %d (%d sent - %d dropped + %d duped)",
			got, want, datagrams, st.TxDropped, st.TxDuplicated)
	}
}

func TestConnDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) ConnStats {
		inner := NewStubConn()
		for i := 0; i < 200; i++ {
			inner.Enqueue([]byte{byte(i), byte(i >> 8)})
		}
		c := NewConn(inner, ConnConfig{Seed: seed, RxDrop: 0.3, RxCorrupt: 0.3})
		buf := make([]byte, 8)
		for {
			if _, _, err := c.ReadFrom(buf); err != nil {
				break
			}
		}
		return c.Stats()
	}
	if a, b := run(42), run(42); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a, b := run(42), run(43); a == b {
		t.Fatalf("different seeds produced identical fault patterns: %+v", a)
	}
}
