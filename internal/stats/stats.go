// Package stats provides the statistical helpers used across Lightning's
// experiment harnesses: moments, histograms, empirical CDFs, percentiles, and
// Gaussian fitting (used to calibrate the photonic noise model of §7 and the
// latency CDF of Fig 4).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the smallest and largest elements of xs.
// It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Gaussian is a fitted normal distribution, as used for Lightning's analog
// noise model (Fig 18: mean 2.32, σ 1.65 on the 0–255 code scale).
type Gaussian struct {
	Mean  float64
	Sigma float64
}

// FitGaussian fits a Gaussian to samples by the method of moments, exactly
// how the paper calibrates the testbed noise model ("we measure the photonic
// multiplication noise on our testbed and fit a Gaussian distribution").
func FitGaussian(xs []float64) Gaussian {
	return Gaussian{Mean: Mean(xs), Sigma: StdDev(xs)}
}

// PDF evaluates the Gaussian probability density at x.
func (g Gaussian) PDF(x float64) float64 {
	if g.Sigma == 0 {
		if x == g.Mean {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - g.Mean) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// Histogram is a fixed-width binned histogram.
type Histogram struct {
	Lo, Hi float64 // value range covered
	Counts []int   // per-bin counts
	N      int     // total samples (including clamped outliers)
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [lo, hi]; samples outside the range are clamped into the edge bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: NewHistogram needs hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.N++
	}
	return h
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the probability density of bin i (normalized so the
// histogram integrates to 1), comparable against a fitted Gaussian PDF.
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.N) * w)
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF; the input is copied and sorted.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Move past equal elements so At is right-continuous.
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the p-quantile (p in [0,1]) by nearest-rank.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Median is the 50th percentile.
func (c *CDF) Median() float64 { return c.Percentile(0.5) }

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// Series formats the CDF as (value, fraction) pairs at n evenly spaced
// fractions, the representation experiment harnesses print for plotting.
func (c *CDF) Series(n int) [][2]float64 {
	out := make([][2]float64, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		out = append(out, [2]float64{c.Percentile(p), p})
	}
	return out
}

// GeoMean returns the geometric mean of positive values; entries <= 0 are
// skipped. Used to average speedup factors across DNN models (Fig 21/22).
func GeoMean(xs []float64) float64 {
	var s float64
	var n int
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// ASCIIBar renders a crude fixed-width proportional bar for terminal
// experiment reports.
func ASCIIBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(width)))
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// FormatSI renders a value with an SI suffix (n, µ, m, k, M, G) for report
// tables.
func FormatSI(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case abs == 0:
		return fmt.Sprintf("0 %s", unit)
	case abs < 1e-6:
		return fmt.Sprintf("%.3g n%s", v*1e9, unit)
	case abs < 1e-3:
		return fmt.Sprintf("%.3g µ%s", v*1e6, unit)
	case abs < 1:
		return fmt.Sprintf("%.3g m%s", v*1e3, unit)
	case abs < 1e3:
		return fmt.Sprintf("%.3g %s", v, unit)
	case abs < 1e6:
		return fmt.Sprintf("%.3g k%s", v/1e3, unit)
	case abs < 1e9:
		return fmt.Sprintf("%.3g M%s", v/1e6, unit)
	default:
		return fmt.Sprintf("%.3g G%s", v/1e9, unit)
	}
}
