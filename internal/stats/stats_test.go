package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5, 5, 5}); got != 0 {
		t.Errorf("StdDev constant = %v, want 0", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestFitGaussianRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = 2.32 + 1.65*rng.NormFloat64()
	}
	g := FitGaussian(xs)
	if math.Abs(g.Mean-2.32) > 0.05 {
		t.Errorf("fitted mean %v, want ≈2.32", g.Mean)
	}
	if math.Abs(g.Sigma-1.65) > 0.05 {
		t.Errorf("fitted sigma %v, want ≈1.65", g.Sigma)
	}
}

func TestGaussianPDFPeak(t *testing.T) {
	g := Gaussian{Mean: 0, Sigma: 1}
	if p := g.PDF(0); math.Abs(p-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("PDF(0) = %v", p)
	}
	if g.PDF(1) >= g.PDF(0) {
		t.Error("PDF not peaked at mean")
	}
	z := Gaussian{Mean: 1, Sigma: 0}
	if z.PDF(0) != 0 || !math.IsInf(z.PDF(1), 1) {
		t.Error("degenerate Gaussian PDF wrong")
	}
}

func TestHistogramCountsAndDensity(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.9, -5, 5}, 0, 1, 10)
	if h.N != 5 {
		t.Fatalf("N = %d, want 5", h.N)
	}
	// -5 clamps into bin 0, +5 into bin 9.
	if h.Counts[0] != 1 {
		t.Errorf("bin 0 count = %d, want 1 (clamped -5)", h.Counts[0])
	}
	if h.Counts[9] != 2 {
		t.Errorf("bin 9 count = %d, want 2 (0.9 + clamped 5)", h.Counts[9])
	}
	// Density must integrate to 1.
	var integral float64
	w := 0.1
	for i := range h.Counts {
		integral += h.Density(i) * w
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(nil, 0, 10, 5)
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	if c := h.BinCenter(4); c != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", c)
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	c := NewCDF(xs)
	prev := 0.0
	for x := -1.0; x <= 101; x += 0.5 {
		v := c.At(x)
		if v < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
	if c.At(-1) != 0 || c.At(101) != 1 {
		t.Error("CDF endpoints wrong")
	}
}

func TestCDFPercentile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if m := c.Median(); m != 5 {
		t.Errorf("Median = %v, want 5", m)
	}
	if p := c.Percentile(0); p != 1 {
		t.Errorf("P0 = %v, want 1", p)
	}
	if p := c.Percentile(1); p != 10 {
		t.Errorf("P100 = %v, want 10", p)
	}
	if p := c.Percentile(0.9); p != 9 {
		t.Errorf("P90 = %v, want 9", p)
	}
}

func TestCDFSeriesShape(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	s := c.Series(3)
	if len(s) != 3 {
		t.Fatalf("Series len = %d", len(s))
	}
	if s[2][1] != 1 || s[2][0] != 3 {
		t.Errorf("final series point = %v", s[2])
	}
}

func TestCDFPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		p = math.Abs(math.Mod(p, 1))
		c := NewCDF(raw)
		v := c.Percentile(p)
		lo, hi := MinMax(raw)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Error("GeoMean of non-positive values should be 0")
	}
}

func TestASCIIBar(t *testing.T) {
	if got := ASCIIBar(0.5, 10); got != "#####....." {
		t.Errorf("ASCIIBar = %q", got)
	}
	if got := ASCIIBar(-1, 4); got != "...." {
		t.Errorf("ASCIIBar clamp low = %q", got)
	}
	if got := ASCIIBar(2, 4); got != "####" {
		t.Errorf("ASCIIBar clamp high = %q", got)
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0 s"},
		{1.5e-9, "1.5 ns"},
		{2e-6, "2 µs"},
		{3e-3, "3 ms"},
		{4, "4 s"},
		{5e3, "5 ks"},
		{6e6, "6 Ms"},
		{7e9, "7 Gs"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, "s"); got != c.want {
			t.Errorf("FormatSI(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
