// Package model represents DNN computation DAGs the way Lightning's DAG
// configuration loader consumes them: an ordered set of layers, each
// decomposable into vector dot-product tasks plus digital non-linearities,
// with the geometry needed to derive count-action targets, MAC counts, and
// memory traffic.
//
// The zoo covers every model the paper evaluates: the three prototype
// models of §6.3 (security anomaly detection, IoT traffic classification,
// LeNet-300-100), the four emulation models of §7 (AlexNet, VGG11/16/19),
// and the seven large models of §9 / Table 6 (AlexNet, ResNet-18, VGG16,
// VGG19, BERT-Large, GPT-2 XL, DLRM).
package model

import (
	"fmt"
)

// Kind enumerates layer types the datapath templates support (§4: "a series
// of datapath templates (e.g., fully-connected layers, convolution layers,
// attention layers, recurrent layers, adder tree modules, non-linear
// computation like ReLU and softmax, etc.)").
type Kind int

// Layer kinds.
const (
	FullyConnected Kind = iota
	Conv2D
	MaxPool
	Attention
	Embedding
	Interaction // DLRM feature interaction
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case FullyConnected:
		return "fc"
	case Conv2D:
		return "conv"
	case MaxPool:
		return "pool"
	case Attention:
		return "attention"
	case Embedding:
		return "embedding"
	case Interaction:
		return "interaction"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Act enumerates the digital non-linearity attached to a layer.
type Act int

// Activations.
const (
	None Act = iota
	ReLU
	Softmax
	GELU
)

// String names the activation.
func (a Act) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Softmax:
		return "softmax"
	case GELU:
		return "gelu"
	default:
		return "none"
	}
}

// Layer is one node of a model's computation DAG.
type Layer struct {
	Name string
	Kind Kind
	Act  Act

	// FullyConnected: In × Out.
	In, Out int

	// Conv2D: input H×W×InC, OutC kernels of K×K, stride S.
	H, W, InC, OutC, K, S int

	// Attention: model dim D, heads, sequence length Seq.
	D, Heads, Seq int

	// Embedding: Rows × Dim table, Lookups gathers per query.
	Rows, Dim, Lookups int

	// Tokens multiplies the layer's per-token MAC count for layers applied
	// position-wise over a sequence (transformer FFN projections). Zero or
	// one means a single application.
	Tokens int
}

// MACs returns the multiply-accumulate count for one inference through the
// layer.
func (l Layer) MACs() int64 {
	tokens := int64(1)
	if l.Tokens > 1 {
		tokens = int64(l.Tokens)
	}
	switch l.Kind {
	case FullyConnected:
		return tokens * int64(l.In) * int64(l.Out)
	case Conv2D:
		oh, ow := l.outHW()
		return int64(oh) * int64(ow) * int64(l.OutC) * int64(l.InC) * int64(l.K) * int64(l.K)
	case Attention:
		// QKV projections + output projection (4·D²·Seq) plus the two
		// Seq×Seq attention matmuls (2·Seq²·D).
		d, s := int64(l.D), int64(l.Seq)
		return 4*d*d*s + 2*s*s*d
	case Embedding, MaxPool, Interaction:
		return 0 // lookups, comparisons and concatenations: no MACs
	default:
		return 0
	}
}

// Params returns the layer's parameter count.
func (l Layer) Params() int64 {
	switch l.Kind {
	case FullyConnected:
		return int64(l.In)*int64(l.Out) + int64(l.Out) // weights + bias
	case Conv2D:
		return int64(l.OutC)*int64(l.InC)*int64(l.K)*int64(l.K) + int64(l.OutC)
	case Attention:
		d := int64(l.D)
		return 4 * d * d // QKVO projection matrices
	case Embedding:
		return int64(l.Rows) * int64(l.Dim)
	default:
		return 0
	}
}

// OutputSize returns the activation element count the layer produces.
func (l Layer) OutputSize() int {
	switch l.Kind {
	case FullyConnected:
		return l.Out
	case Conv2D:
		oh, ow := l.outHW()
		return oh * ow * l.OutC
	case MaxPool:
		oh := (l.H - l.K) / l.S // pool over H×W×InC
		ow := (l.W - l.K) / l.S
		return (oh + 1) * (ow + 1) * l.InC
	case Attention:
		return l.D * l.Seq
	case Embedding:
		return l.Dim * l.Lookups
	case Interaction:
		return l.In
	default:
		return 0
	}
}

func (l Layer) outHW() (int, int) {
	if l.S == 0 {
		return 0, 0
	}
	return (l.H-l.K)/l.S + 1, (l.W-l.K)/l.S + 1
}

// Validate checks the layer geometry is well formed.
func (l Layer) Validate() error {
	switch l.Kind {
	case FullyConnected:
		if l.In <= 0 || l.Out <= 0 {
			return fmt.Errorf("model: fc layer %q needs positive In/Out", l.Name)
		}
	case Conv2D, MaxPool:
		if l.H <= 0 || l.W <= 0 || l.K <= 0 || l.S <= 0 {
			return fmt.Errorf("model: %s layer %q needs positive geometry", l.Kind, l.Name)
		}
		if l.K > l.H || l.K > l.W {
			return fmt.Errorf("model: %s layer %q kernel exceeds input", l.Kind, l.Name)
		}
		if l.Kind == Conv2D && (l.InC <= 0 || l.OutC <= 0) {
			return fmt.Errorf("model: conv layer %q needs channels", l.Name)
		}
	case Attention:
		if l.D <= 0 || l.Seq <= 0 || l.Heads <= 0 {
			return fmt.Errorf("model: attention layer %q needs D/Seq/Heads", l.Name)
		}
	case Embedding:
		if l.Rows <= 0 || l.Dim <= 0 || l.Lookups <= 0 {
			return fmt.Errorf("model: embedding layer %q needs Rows/Dim/Lookups", l.Name)
		}
	}
	return nil
}

// Domain classifies a model's workload for reports (Table 6's Type column).
type Domain string

// Domains.
const (
	Vision         Domain = "vision"
	Language       Domain = "language"
	Recommendation Domain = "recommendation"
	NetworkTraffic Domain = "network-traffic"
)

// Model is a DNN's computation DAG plus the metadata the simulator and DAG
// loader need.
type Model struct {
	Name   string
	Domain Domain
	Layers []Layer

	// QueryBytes is the inference request payload size (Table 6's
	// "Inference query size").
	QueryBytes int

	// DatapathLayers is the sequential layer count charged datapath
	// latency in §9: parallel branches count once (Table 6 footnote:
	// "when multiple layers can be processed in parallel, we apply the
	// single-layer datapath latency only once" — applicable to BERT,
	// GPT-2, and DLRM). Zero means len(Layers).
	DatapathLayers int

	// SizeMBOverride pins the reported model size where the paper's
	// number includes structures our layer list abstracts away (e.g.
	// DLRM's full embedding tables). Zero means derive from Params().
	SizeMBOverride float64
}

// Validate checks every layer.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("model: %s has no layers", m.Name)
	}
	for _, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalMACs sums MAC counts across layers.
func (m *Model) TotalMACs() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.MACs()
	}
	return s
}

// TotalParams sums parameter counts across layers.
func (m *Model) TotalParams() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.Params()
	}
	return s
}

// SizeMB returns the stored model size in megabytes (fp32 parameters unless
// overridden).
func (m *Model) SizeMB() float64 {
	if m.SizeMBOverride > 0 {
		return m.SizeMBOverride
	}
	return float64(m.TotalParams()) * 4 / 1e6
}

// SequentialLayers returns the layer count charged per-layer datapath
// latency.
func (m *Model) SequentialLayers() int {
	if m.DatapathLayers > 0 {
		return m.DatapathLayers
	}
	return len(m.Layers)
}

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s: %d layers, %.4g M params, %.4g M MACs/inference",
		m.Name, len(m.Layers), float64(m.TotalParams())/1e6, float64(m.TotalMACs())/1e6)
}
