package model

import (
	"math"
	"testing"
)

func TestLayerMACs(t *testing.T) {
	if got := fc("f", 784, 300, ReLU).MACs(); got != 784*300 {
		t.Errorf("fc MACs = %d", got)
	}
	c := conv("c", 227, 227, 3, 96, 11, 4, ReLU)
	// (227-11)/4+1 = 55 → 55·55·96·3·11·11.
	want := int64(55*55) * 96 * 3 * 121
	if got := c.MACs(); got != want {
		t.Errorf("conv MACs = %d, want %d", got, want)
	}
	a := Layer{Kind: Attention, D: 1024, Heads: 16, Seq: 128}
	wantA := int64(4*1024*1024*128 + 2*128*128*1024)
	if got := a.MACs(); got != wantA {
		t.Errorf("attention MACs = %d, want %d", got, wantA)
	}
	if pool("p", 10, 10, 4, 2, 2).MACs() != 0 {
		t.Error("pool should have 0 MACs")
	}
	tok := fc("t", 1024, 4096, GELU)
	tok.Tokens = 128
	if got := tok.MACs(); got != 128*1024*4096 {
		t.Errorf("token-wise fc MACs = %d", got)
	}
}

func TestLayerParams(t *testing.T) {
	if got := fc("f", 100, 10, Softmax).Params(); got != 1010 {
		t.Errorf("fc params = %d", got)
	}
	if got := conv("c", 10, 10, 3, 8, 3, 1, None).Params(); got != 8*3*9+8 {
		t.Errorf("conv params = %d", got)
	}
	e := Layer{Kind: Embedding, Rows: 100, Dim: 8, Lookups: 2}
	if e.Params() != 800 {
		t.Errorf("embedding params = %d", e.Params())
	}
}

func TestLayerOutputSize(t *testing.T) {
	if fc("f", 4, 7, None).OutputSize() != 7 {
		t.Error("fc output size")
	}
	if conv("c", 227, 227, 3, 96, 11, 4, None).OutputSize() != 55*55*96 {
		t.Error("conv output size")
	}
	e := Layer{Kind: Embedding, Rows: 10, Dim: 8, Lookups: 3}
	if e.OutputSize() != 24 {
		t.Error("embedding output size")
	}
}

func TestLayerValidate(t *testing.T) {
	bad := []Layer{
		fc("f", 0, 10, None),
		conv("c", 0, 10, 3, 8, 3, 1, None),
		conv("c", 5, 5, 3, 8, 7, 1, None), // kernel > input
		conv("c", 10, 10, 0, 8, 3, 1, None),
		{Name: "a", Kind: Attention, D: 0, Seq: 1, Heads: 1},
		{Name: "e", Kind: Embedding},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("invalid layer %q (%s) accepted", l.Name, l.Kind)
		}
	}
	if err := fc("ok", 4, 4, ReLU).Validate(); err != nil {
		t.Errorf("valid layer rejected: %v", err)
	}
}

func TestPrototypeModelParamCounts(t *testing.T) {
	// §6.3's parameter counts (the paper counts weights without biases
	// for the two N3IC models).
	sec := SecurityModel()
	var secW int64
	for _, l := range sec.Layers {
		secW += int64(l.In) * int64(l.Out)
	}
	if secW != 1568 {
		t.Errorf("security weights = %d, want 1568", secW)
	}
	tc := TrafficClassModel()
	var tcW int64
	for _, l := range tc.Layers {
		tcW += int64(l.In) * int64(l.Out)
	}
	if tcW != 1696 {
		t.Errorf("traffic-classification weights = %d, want 1696", tcW)
	}
	lenet := LeNet300100()
	// ≈266K parameters (paper rounds to 266,200; with biases: 266,610).
	if p := lenet.TotalParams(); p < 266000 || p > 267000 {
		t.Errorf("lenet params = %d, want ≈266K", p)
	}
}

func TestTable6ModelSizes(t *testing.T) {
	// fp32 sizes must land near Table 6's MB column.
	cases := []struct {
		m      *Model
		wantMB float64
		tolPct float64
	}{
		{AlexNet(), 233, 10},
		{ResNet18(), 45, 15},
		{VGG16(), 528, 10},
		{VGG19(), 548, 10},
		{BERTLarge(), 1380, 15},
		{GPT2XL(), 6263, 15},
		{DLRM(), 12400, 1}, // pinned override
	}
	for _, c := range cases {
		got := c.m.SizeMB()
		if math.Abs(got-c.wantMB)/c.wantMB*100 > c.tolPct {
			t.Errorf("%s size = %.0f MB, want ≈%.0f MB", c.m.Name, got, c.wantMB)
		}
	}
}

func TestTable6QuerySizes(t *testing.T) {
	cases := map[string]int{
		"alexnet": 150 * 1024, "bert-large": 5120, "gpt2-xl": 10240, "dlrm": 5120,
	}
	for name, want := range cases {
		m, ok := ByName(name)
		if !ok {
			t.Fatalf("model %s missing", name)
		}
		if m.QueryBytes != want {
			t.Errorf("%s query = %d, want %d", name, m.QueryBytes, want)
		}
	}
}

func TestTable6DatapathLayers(t *testing.T) {
	// Lightning datapath latency = 193 ns × sequential layers must match
	// Table 6's column.
	cases := map[string]int{
		"alexnet": 8, "resnet18": 21, "vgg16": 16, "vgg19": 19,
		"bert-large": 169, "gpt2-xl": 338, "dlrm": 8,
	}
	for name, want := range cases {
		m, _ := ByName(name)
		if got := m.SequentialLayers(); got != want {
			t.Errorf("%s sequential layers = %d, want %d", name, got, want)
		}
	}
}

func TestZooValidatesAndOrders(t *testing.T) {
	sims := SimulationModels()
	if len(sims) != 7 {
		t.Fatalf("simulation models = %d, want 7", len(sims))
	}
	wantOrder := []string{"alexnet", "resnet18", "vgg16", "vgg19", "bert-large", "gpt2-xl", "dlrm"}
	for i, m := range sims {
		if m.Name != wantOrder[i] {
			t.Errorf("model %d = %s, want %s", i, m.Name, wantOrder[i])
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
	for _, m := range append(PrototypeModels(), EmulationModels()...) {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
}

func TestMACOrdering(t *testing.T) {
	// Compute demand must rank sensibly: VGG19 > VGG16 > VGG11 > ResNet18
	// > AlexNet, and GPT-2 XL > BERT-Large.
	order := []*Model{AlexNet(), ResNet18(), VGG11(), VGG16(), VGG19()}
	for i := 1; i < len(order); i++ {
		if order[i].TotalMACs() <= order[i-1].TotalMACs() {
			t.Errorf("%s MACs (%d) not > %s (%d)",
				order[i].Name, order[i].TotalMACs(), order[i-1].Name, order[i-1].TotalMACs())
		}
	}
	if GPT2XL().TotalMACs() <= BERTLarge().TotalMACs() {
		t.Error("GPT-2 XL should out-compute BERT-Large")
	}
	// DLRM is lookup-dominated: tiny MAC count despite its size.
	if DLRM().TotalMACs() > 10e6 {
		t.Errorf("DLRM MACs = %d, want < 10M", DLRM().TotalMACs())
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("vgg11"); !ok {
		t.Error("vgg11 not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown model found")
	}
}

func TestModelString(t *testing.T) {
	s := LeNet300100().String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}

func TestKindAndActStrings(t *testing.T) {
	if FullyConnected.String() != "fc" || Conv2D.String() != "conv" ||
		MaxPool.String() != "pool" || Attention.String() != "attention" ||
		Embedding.String() != "embedding" || Interaction.String() != "interaction" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
	if ReLU.String() != "relu" || Softmax.String() != "softmax" ||
		GELU.String() != "gelu" || None.String() != "none" {
		t.Error("act names wrong")
	}
}
