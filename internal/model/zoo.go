package model

// The model zoo. Geometries follow the original architecture papers; the
// DatapathLayers counts are pinned to reproduce Table 6's Lightning datapath
// latencies (193 ns × layers).

// fc builds a fully-connected layer.
func fc(name string, in, out int, act Act) Layer {
	return Layer{Name: name, Kind: FullyConnected, In: in, Out: out, Act: act}
}

// conv builds a convolution layer (same-padding geometries are expressed by
// pre-padded H/W).
func conv(name string, h, w, inC, outC, k, s int, act Act) Layer {
	return Layer{Name: name, Kind: Conv2D, H: h, W: w, InC: inC, OutC: outC, K: k, S: s, Act: act}
}

// pool builds a max-pool layer.
func pool(name string, h, w, c, k, s int) Layer {
	return Layer{Name: name, Kind: MaxPool, H: h, W: w, InC: c, K: k, S: s}
}

// attn builds one transformer block's attention+FFN compute, expressed as an
// attention layer followed by the two FFN matmuls.
func attnBlock(name string, d, heads, seq, ffn int) []Layer {
	f1 := fc(name+"/ffn1", d, ffn, GELU)
	f1.Tokens = seq
	f2 := fc(name+"/ffn2", ffn, d, None)
	f2.Tokens = seq
	return []Layer{
		{Name: name + "/attn", Kind: Attention, D: d, Heads: heads, Seq: seq, Act: None},
		f1,
		f2,
	}
}

// SecurityModel is the network-anomaly-detection DNN of §6.3: the N3IC
// architecture with 8-bit weights, 1,568 parameters (32→32→16→2, no biases
// in the paper's count).
func SecurityModel() *Model {
	return &Model{
		Name:   "security",
		Domain: NetworkTraffic,
		Layers: []Layer{
			fc("fc1", 32, 32, ReLU),
			fc("fc2", 32, 16, ReLU),
			fc("fc3", 16, 2, Softmax),
		},
		QueryBytes: 32,
	}
}

// TrafficClassModel is the IoT traffic-classification DNN of §6.3: 1,696
// parameters (32→32→16→10).
func TrafficClassModel() *Model {
	return &Model{
		Name:   "traffic-classification",
		Domain: NetworkTraffic,
		Layers: []Layer{
			fc("fc1", 32, 32, ReLU),
			fc("fc2", 32, 16, ReLU),
			fc("fc3", 16, 10, Softmax),
		},
		QueryBytes: 32,
	}
}

// LeNet300100 is the MNIST classifier of §6.3: 784→300→100→10, ≈266 K
// parameters.
func LeNet300100() *Model {
	return &Model{
		Name:   "lenet-300-100",
		Domain: Vision,
		Layers: []Layer{
			fc("fc1", 784, 300, ReLU),
			fc("fc2", 300, 100, ReLU),
			fc("fc3", 100, 10, Softmax),
		},
		QueryBytes: 784,
	}
}

// AlexNet (Krizhevsky et al.): 5 conv + 3 fc layers, ≈61 M params, 233 MB
// fp32 (Table 6), 8 sequential layers.
func AlexNet() *Model {
	return &Model{
		Name:   "alexnet",
		Domain: Vision,
		Layers: []Layer{
			conv("conv1", 227, 227, 3, 96, 11, 4, ReLU),
			conv("conv2", 31, 31, 96, 256, 5, 1, ReLU), // 27+4 pad
			conv("conv3", 15, 15, 256, 384, 3, 1, ReLU),
			conv("conv4", 15, 15, 384, 384, 3, 1, ReLU),
			conv("conv5", 15, 15, 384, 256, 3, 1, ReLU),
			fc("fc6", 9216, 4096, ReLU),
			fc("fc7", 4096, 4096, ReLU),
			fc("fc8", 4096, 1000, Softmax),
		},
		QueryBytes:     150 * 1024,
		DatapathLayers: 8,
	}
}

// vggConvStack builds the shared VGG trunk layout for a configuration
// (counts of 3×3 convs per stage).
func vggConvStack(stages [5]int) []Layer {
	chans := [5]int{64, 128, 256, 512, 512}
	sizes := [5]int{226, 114, 58, 30, 16} // pre-padded inputs per stage
	var ls []Layer
	inC := 3
	for st := 0; st < 5; st++ {
		for i := 0; i < stages[st]; i++ {
			ls = append(ls, conv(
				stageName(st, i), sizes[st], sizes[st], inC, chans[st], 3, 1, ReLU))
			inC = chans[st]
		}
	}
	return ls
}

func stageName(stage, idx int) string {
	return "conv" + string(rune('1'+stage)) + "_" + string(rune('1'+idx))
}

func vggHead() []Layer {
	return []Layer{
		fc("fc6", 25088, 4096, ReLU),
		fc("fc7", 4096, 4096, ReLU),
		fc("fc8", 4096, 1000, Softmax),
	}
}

// VGG11 (configuration A): 8 conv + 3 fc.
func VGG11() *Model {
	ls := append(vggConvStack([5]int{1, 1, 2, 2, 2}), vggHead()...)
	return &Model{Name: "vgg11", Domain: Vision, Layers: ls, QueryBytes: 150 * 1024, DatapathLayers: 11}
}

// VGG16 (configuration D): 13 conv + 3 fc, 528 MB fp32 (Table 6).
func VGG16() *Model {
	ls := append(vggConvStack([5]int{2, 2, 3, 3, 3}), vggHead()...)
	return &Model{Name: "vgg16", Domain: Vision, Layers: ls, QueryBytes: 150 * 1024, DatapathLayers: 16}
}

// VGG19 (configuration E): 16 conv + 3 fc, 548 MB fp32 (Table 6).
func VGG19() *Model {
	ls := append(vggConvStack([5]int{2, 2, 4, 4, 4}), vggHead()...)
	return &Model{Name: "vgg19", Domain: Vision, Layers: ls, QueryBytes: 150 * 1024, DatapathLayers: 19}
}

// ResNet18: 17 conv + 1 fc, ≈11.7 M params / 45 MB (Table 6). Residual adds
// are digital and free of MACs. Table 6 charges 21 sequential datapath steps
// (4.053 µs / 193 ns).
func ResNet18() *Model {
	var ls []Layer
	ls = append(ls, conv("conv1", 230, 230, 3, 64, 7, 2, ReLU))
	stage := func(name string, h, inC, outC, firstStride int) {
		s := firstStride
		c := inC
		for i := 0; i < 4; i++ {
			hh := h + 2 // 3×3 same-pad
			if i == 0 && s != 1 {
				hh = h*s + 1
			}
			ls = append(ls, conv(name+"_"+string(rune('a'+i)), hh, hh, c, outC, 3, s, ReLU))
			c = outC
			s = 1
		}
	}
	stage("conv2", 56, 64, 64, 1)
	stage("conv3", 28, 64, 128, 2)
	stage("conv4", 14, 128, 256, 2)
	stage("conv5", 7, 256, 512, 2)
	ls = append(ls, fc("fc", 512, 1000, Softmax))
	return &Model{Name: "resnet18", Domain: Vision, Layers: ls, QueryBytes: 150 * 1024, DatapathLayers: 21}
}

// BERTLarge: 24 transformer blocks, d=1024, 16 heads, FFN 4096, ≈340 M
// params / 1380 MB. Query 5.12 KB (Table 6) ≈ 128 tokens. Table 6 charges
// 169 sequential datapath steps (32.617 µs / 193 ns): attention sub-layers
// within a block partially parallelize.
func BERTLarge() *Model {
	var ls []Layer
	ls = append(ls, Layer{Name: "embed", Kind: Embedding, Rows: 30522, Dim: 1024, Lookups: 128})
	for b := 0; b < 24; b++ {
		ls = append(ls, attnBlock(blockName("block", b), 1024, 16, 128, 4096)...)
	}
	return &Model{Name: "bert-large", Domain: Language, Layers: ls,
		QueryBytes: 5120, DatapathLayers: 169}
}

// GPT2XL: 48 blocks, d=1600, 25 heads, FFN 6400, ≈1.5 B params / 6263 MB.
// Query 10.24 KB ≈ 256 tokens; 338 sequential datapath steps.
func GPT2XL() *Model {
	var ls []Layer
	ls = append(ls, Layer{Name: "embed", Kind: Embedding, Rows: 50257, Dim: 1600, Lookups: 256})
	for b := 0; b < 48; b++ {
		ls = append(ls, attnBlock(blockName("block", b), 1600, 25, 256, 6400)...)
	}
	return &Model{Name: "gpt2-xl", Domain: Language, Layers: ls,
		QueryBytes: 10240, DatapathLayers: 338}
}

// DLRM: embedding tables (the 12.4 GB bulk, Table 6's size override),
// bottom MLP 13→512→256→64, feature interaction, top MLP →512→256→1.
// 8 sequential datapath steps (1.544 µs / 193 ns): table lookups
// parallelize.
func DLRM() *Model {
	return &Model{
		Name:   "dlrm",
		Domain: Recommendation,
		Layers: []Layer{
			{Name: "embed", Kind: Embedding, Rows: 10_000_000, Dim: 64, Lookups: 26},
			fc("bot1", 13, 512, ReLU),
			fc("bot2", 512, 256, ReLU),
			fc("bot3", 256, 64, ReLU),
			{Name: "interact", Kind: Interaction, In: 27 * 27 / 2},
			fc("top1", 479, 512, ReLU),
			fc("top2", 512, 256, ReLU),
			fc("top3", 256, 1, None),
		},
		QueryBytes:     5120,
		DatapathLayers: 8,
		SizeMBOverride: 12400,
	}
}

func blockName(prefix string, i int) string {
	return prefix + "-" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// SimulationModels returns the seven large DNNs of §9 in Table 6 order.
func SimulationModels() []*Model {
	return []*Model{AlexNet(), ResNet18(), VGG16(), VGG19(), BERTLarge(), GPT2XL(), DLRM()}
}

// EmulationModels returns the four models of §7 / Fig 19.
func EmulationModels() []*Model {
	return []*Model{AlexNet(), VGG11(), VGG16(), VGG19()}
}

// PrototypeModels returns the three models served on the testbed (§6.3).
func PrototypeModels() []*Model {
	return []*Model{SecurityModel(), TrafficClassModel(), LeNet300100()}
}

// ByName looks a model up across all zoos.
func ByName(name string) (*Model, bool) {
	for _, m := range append(append(SimulationModels(), PrototypeModels()...), VGG11()) {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}
