package emu

import "testing"

func TestEmulationProxiesFig19Set(t *testing.T) {
	nets := EmulationProxies(1)
	want := []string{"alexnet-proxy", "vgg11-proxy", "vgg16-proxy", "vgg19-proxy"}
	if len(nets) != len(want) {
		t.Fatalf("%d proxies, want %d", len(nets), len(want))
	}
	for i, n := range nets {
		if n.Name != want[i] {
			t.Errorf("proxy %d = %s, want %s", i, n.Name, want[i])
		}
	}
	// The VGG family deepens monotonically, as the op counts must reflect.
	if !(len(nets[1].Ops) < len(nets[2].Ops) && len(nets[2].Ops) < len(nets[3].Ops)) {
		t.Errorf("VGG proxy depths not increasing: %d, %d, %d",
			len(nets[1].Ops), len(nets[2].Ops), len(nets[3].Ops))
	}
}

// TestEvaluateReproducible pins the noisy photonic scheme too: identical
// emulator seed and evaluation seed must reproduce identical agreement
// numbers, the property every fixed-seed experiment in the repo relies on.
func TestEvaluateReproducible(t *testing.T) {
	net := ProxyAlexNet(3)
	run := func() []AgreementResult {
		return NewCalibrated(7).Evaluate(net, 2, 11)
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("result lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("scheme %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
