// Package emu is Lightning's accuracy emulator (§7): it runs DNN inference
// under three computation schemes — 32-bit float, 8-bit digital, and 8-bit
// photonic with the calibrated Gaussian analog noise of Fig 18 — and
// measures how far the photonic scheme's predictions drift from the digital
// references (Fig 19).
//
// The paper's emulator evaluates pretrained AlexNet/VGG models on ImageNet;
// neither the weights nor the dataset are redistributable here, so the
// emulator runs channel-scaled proxy networks with matched depth structure
// on synthetic inputs and reports top-k *agreement with the fp32 reference*
// (DESIGN.md §2 documents the substitution). The quantization and noise
// mathematics are exactly the paper's: per-tensor symmetric 8-bit
// quantization; per-MAC additive Gaussian noise, aggregated per dot product
// as N(k·µ, σ·√k) by independence.
package emu

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Tensor is a dense H×W×C activation volume (C-fastest layout). FC layers
// use H=W=1.
type Tensor struct {
	H, W, C int
	Data    []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(h, w, c int) *Tensor {
	return &Tensor{H: h, W: w, C: c, Data: make([]float64, h*w*c)}
}

// At returns the element at (y, x, c).
func (t *Tensor) At(y, x, c int) float64 { return t.Data[(y*t.W+x)*t.C+c] }

// Set writes the element at (y, x, c).
func (t *Tensor) Set(y, x, c int, v float64) { t.Data[(y*t.W+x)*t.C+c] = v }

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Op is one inference operation.
type Op interface {
	// Apply transforms the input under the evaluation context (which
	// carries the scheme's quantization and noise behaviour).
	Apply(in *Tensor, ctx *evalCtx) *Tensor
	// Name identifies the op in diagnostics.
	Name() string
}

// ConvOp is a strided convolution with optional zero padding and ReLU.
type ConvOp struct {
	Label     string
	InC, OutC int
	K, S      int
	// Pad is symmetric zero padding (1 for 3×3 "same" convolutions).
	Pad  int
	W    []float64 // [outC][k][k][inC] flattened
	B    []float64
	ReLU bool
}

// Name implements Op.
func (c *ConvOp) Name() string { return c.Label }

// Apply implements Op: each output element is one dot product of length
// K·K·InC, quantized and noised per the context's scheme.
func (c *ConvOp) Apply(in *Tensor, ctx *evalCtx) *Tensor {
	if in.C != c.InC {
		panic(fmt.Sprintf("emu: %s expects %d channels, got %d", c.Label, c.InC, in.C))
	}
	if c.Pad > 0 {
		padded := NewTensor(in.H+2*c.Pad, in.W+2*c.Pad, in.C)
		for y := 0; y < in.H; y++ {
			base := ((y+c.Pad)*padded.W + c.Pad) * in.C
			copy(padded.Data[base:base+in.W*in.C], in.Data[y*in.W*in.C:(y+1)*in.W*in.C])
		}
		in = padded
	}
	oh := (in.H-c.K)/c.S + 1
	ow := (in.W-c.K)/c.S + 1
	out := NewTensor(oh, ow, c.OutC)
	qw, ws := ctx.quantize(c.W)
	qin, as := ctx.quantize(in.Data)
	kk := c.K * c.K * c.InC
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for oc := 0; oc < c.OutC; oc++ {
				var s float64
				wBase := oc * kk
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.S + ky
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.S + kx
						inBase := (iy*in.W + ix) * in.C
						wRow := wBase + (ky*c.K+kx)*c.InC
						for ic := 0; ic < c.InC; ic++ {
							s += qw[wRow+ic] * qin[inBase+ic]
						}
					}
				}
				s += ctx.dotNoise(kk, ws, as)
				s += c.B[oc]
				if c.ReLU && s < 0 {
					s = 0
				}
				out.Set(oy, ox, oc, s)
			}
		}
	}
	return out
}

// PoolOp is a max pool.
type PoolOp struct {
	Label string
	K, S  int
}

// Name implements Op.
func (p *PoolOp) Name() string { return p.Label }

// Apply implements Op.
func (p *PoolOp) Apply(in *Tensor, _ *evalCtx) *Tensor {
	oh := (in.H-p.K)/p.S + 1
	ow := (in.W-p.K)/p.S + 1
	out := NewTensor(oh, ow, in.C)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < in.C; c++ {
				best := in.At(oy*p.S, ox*p.S, c)
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						if v := in.At(oy*p.S+ky, ox*p.S+kx, c); v > best {
							best = v
						}
					}
				}
				out.Set(oy, ox, c, best)
			}
		}
	}
	return out
}

// FCOp is a dense layer over the flattened input.
type FCOp struct {
	Label   string
	In, Out int
	W       []float64 // [out][in]
	B       []float64
	ReLU    bool
}

// Name implements Op.
func (f *FCOp) Name() string { return f.Label }

// Apply implements Op.
func (f *FCOp) Apply(in *Tensor, ctx *evalCtx) *Tensor {
	if in.Len() != f.In {
		panic(fmt.Sprintf("emu: %s expects %d inputs, got %d", f.Label, f.In, in.Len()))
	}
	out := NewTensor(1, 1, f.Out)
	qw, ws := ctx.quantize(f.W)
	qin, as := ctx.quantize(in.Data)
	for j := 0; j < f.Out; j++ {
		var s float64
		base := j * f.In
		for i := 0; i < f.In; i++ {
			s += qw[base+i] * qin[i]
		}
		s += ctx.dotNoise(f.In, ws, as)
		s += f.B[j]
		if f.ReLU && s < 0 {
			s = 0
		}
		out.Set(0, 0, j, s)
	}
	return out
}

// Net is an emulated network: an op pipeline.
type Net struct {
	Name          string
	Classes       int
	InH, InW, InC int
	Ops           []Op
}

// randWeights draws He-initialized weights.
func randWeights(rng *rand.Rand, n int, fanIn int) []float64 {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * std
	}
	return out
}
