package emu

import (
	"math"
	"math/rand/v2"
	"sort"

	"github.com/lightning-smartnic/lightning/internal/stats"
)

// Scheme selects the computation precision/noise regime of §7's emulator.
type Scheme int

// Schemes of Fig 19.
const (
	// SchemeFP32 is the 32-bit digital reference.
	SchemeFP32 Scheme = iota
	// SchemeInt8 is an 8-bit digital accelerator: per-tensor symmetric
	// quantization of weights and activations, noiseless.
	SchemeInt8
	// SchemePhotonic8 is Lightning: 8-bit quantization plus the
	// calibrated per-MAC Gaussian analog noise.
	SchemePhotonic8
)

// String names the scheme as Fig 19 labels it.
func (s Scheme) String() string {
	switch s {
	case SchemeInt8:
		return "Digital-8bit"
	case SchemePhotonic8:
		return "Lightning"
	default:
		return "Digital-32bit"
	}
}

// Emulator evaluates networks under a scheme.
type Emulator struct {
	// Noise is the analog noise model in code units (Fig 18's fit by
	// default).
	Noise stats.Gaussian
	// WavelengthsPerReadout sets the noise granularity. The paper's
	// emulator applies noise "to the results of each MAC" (value 1, the
	// conservative default); physically, noise enters per photodetector
	// readout, and one readout accumulates N wavelengths' MACs — so the
	// §8 chip (N=24) sees √24 less noise per MAC than the per-MAC model
	// assumes. The ablation benches quantify the difference.
	WavelengthsPerReadout int
	rng                   *rand.Rand
}

// New returns an emulator with the prototype's raw fitted noise (Fig 18:
// mean 2.32, σ 1.65).
func New(seed uint64) *Emulator {
	return &Emulator{
		Noise: stats.Gaussian{Mean: 2.32, Sigma: 1.65},
		rng:   rand.New(rand.NewPCG(seed, 0xe8)),
	}
}

// NewCalibrated returns an emulator whose noise DC offset has been removed,
// as the detector-side calibration of Appendix A does for the deployed
// datapath: the measured I_min → r_min mapping absorbs the noise mean, so
// only the σ=1.65 stochastic component reaches inference. Deep networks are
// exquisitely sensitive to a per-MAC DC bias (it compounds through every
// ReLU layer), which is why the inference experiments use this model.
func NewCalibrated(seed uint64) *Emulator {
	e := New(seed)
	e.Noise.Mean = 0
	return e
}

// evalCtx carries the per-run scheme state into ops.
type evalCtx struct {
	scheme Scheme
	noise  stats.Gaussian
	perRd  int // wavelengths per readout (≥1)
	rng    *rand.Rand
}

// quantize returns the scheme's view of a tensor: fp32 passes through;
// 8-bit schemes snap every value to the 256-level symmetric grid. The
// returned scale is the tensor's max magnitude (one LSB = scale/255).
func (c *evalCtx) quantize(xs []float64) ([]float64, float64) {
	var scale float64
	for _, x := range xs {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	if c.scheme == SchemeFP32 || scale == 0 {
		return xs, scale
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Round(x/scale*255) / 255 * scale
	}
	return out, scale
}

// dotNoise returns the analog noise added to one dot product of k MACs.
// Per-MAC noise is Gaussian(µ, σ) in code units on the product scale
// (ws·as/255 real units per code); k independent MACs sum to
// Gaussian(k·µ, σ·√k).
func (c *evalCtx) dotNoise(k int, wScale, aScale float64) float64 {
	if c.scheme != SchemePhotonic8 || k == 0 {
		return 0
	}
	// With N wavelengths per detector readout, k MACs take ceil(k/N)
	// readouts and each readout draws one noise sample.
	draws := k
	if c.perRd > 1 {
		draws = (k + c.perRd - 1) / c.perRd
	}
	lsb := wScale * aScale / 255
	mean := float64(draws) * c.noise.Mean * lsb
	sigma := c.noise.Sigma * math.Sqrt(float64(draws)) * lsb
	return mean + sigma*c.rng.NormFloat64()
}

// Run evaluates the net on an input under the scheme and returns the output
// logits.
func (e *Emulator) Run(net *Net, in *Tensor, scheme Scheme) []float64 {
	ctx := &evalCtx{scheme: scheme, noise: e.Noise, perRd: e.WavelengthsPerReadout, rng: e.rng}
	t := in
	for _, op := range net.Ops {
		t = op.Apply(t, ctx)
	}
	out := make([]float64, t.Len())
	copy(out, t.Data)
	return out
}

// TopK returns the indices of the k largest logits, descending.
func TopK(logits []float64, k int) []int {
	idx := make([]int, len(logits))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return logits[idx[a]] > logits[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// AgreementResult is one scheme's accuracy proxy: how often its top-1 (and
// top-5) predictions agree with the fp32 reference.
type AgreementResult struct {
	Scheme     Scheme
	Top1, Top5 float64
}

// Evaluate runs n random inputs through the net under all three schemes and
// reports top-1/top-5 agreement with the fp32 reference — the Fig 19
// comparison under the synthetic-weights substitution.
func (e *Emulator) Evaluate(net *Net, n int, seed uint64) []AgreementResult {
	rng := rand.New(rand.NewPCG(seed, 0x1e19))
	schemes := []Scheme{SchemeFP32, SchemeInt8, SchemePhotonic8}
	agree1 := make([]int, len(schemes))
	agree5 := make([]int, len(schemes))
	for i := 0; i < n; i++ {
		in := NewTensor(net.InH, net.InW, net.InC)
		for j := range in.Data {
			in.Data[j] = rng.Float64() // image-like non-negative inputs
		}
		ref := e.Run(net, in, SchemeFP32)
		refTop1 := TopK(ref, 1)[0]
		for si, s := range schemes {
			logits := ref
			if s != SchemeFP32 {
				logits = e.Run(net, in, s)
			}
			top5 := TopK(logits, 5)
			if top5[0] == refTop1 {
				agree1[si]++
			}
			for _, t := range top5 {
				if t == refTop1 {
					agree5[si]++
					break
				}
			}
		}
	}
	out := make([]AgreementResult, len(schemes))
	for si, s := range schemes {
		out[si] = AgreementResult{
			Scheme: s,
			Top1:   float64(agree1[si]) / float64(n),
			Top5:   float64(agree5[si]) / float64(n),
		}
	}
	return out
}
