package emu

import (
	"fmt"
	"math/rand/v2"
)

// Proxy networks: channel-scaled stand-ins for the §7 emulation models with
// matched depth structure (conv stage counts, pooling positions, 3-layer FC
// head) on 32×32 synthetic inputs. Weights are He-initialized random
// tensors: without the proprietary pretrained checkpoints the emulator
// measures prediction *stability* of a fixed deep function under
// quantization and analog noise, which is the mechanism Fig 19 isolates.

// proxyClasses is the output width of every proxy net.
const proxyClasses = 100

// builder accumulates ops while tracking the activation shape.
type builder struct {
	net     *Net
	h, w, c int
	rng     *rand.Rand
}

func newBuilder(name string, rng *rand.Rand) *builder {
	return &builder{
		net: &Net{Name: name, Classes: proxyClasses, InH: 32, InW: 32, InC: 3},
		h:   32, w: 32, c: 3,
		rng: rng,
	}
}

func (b *builder) conv(outC int) {
	// 3×3 same-padding, as in VGG.
	op := &ConvOp{
		Label: fmt.Sprintf("conv%d", len(b.net.Ops)),
		InC:   b.c, OutC: outC, K: 3, S: 1, Pad: 1,
		W:    randWeights(b.rng, outC*3*3*b.c, 3*3*b.c),
		B:    randWeights(b.rng, outC, 0),
		ReLU: true,
	}
	b.net.Ops = append(b.net.Ops, op)
	b.c = outC
}

func (b *builder) pool() {
	b.net.Ops = append(b.net.Ops, &PoolOp{Label: fmt.Sprintf("pool%d", len(b.net.Ops)), K: 2, S: 2})
	b.h = (b.h-2)/2 + 1
	b.w = (b.w-2)/2 + 1
}

func (b *builder) fc(out int, relu bool) {
	in := b.h * b.w * b.c
	op := &FCOp{
		Label: fmt.Sprintf("fc%d", len(b.net.Ops)),
		In:    in, Out: out,
		W:    randWeights(b.rng, out*in, in),
		B:    randWeights(b.rng, out, 0),
		ReLU: relu,
	}
	b.net.Ops = append(b.net.Ops, op)
	b.h, b.w, b.c = 1, 1, out
}

// ProxyAlexNet: 5 conv + 3 fc, AlexNet's depth plan at reduced width.
func ProxyAlexNet(seed uint64) *Net {
	b := newBuilder("alexnet-proxy", rand.New(rand.NewPCG(seed, 0xa1e)))
	b.conv(16)
	b.pool()
	b.conv(32)
	b.pool()
	b.conv(48)
	b.conv(48)
	b.conv(32)
	b.fc(64, true)
	b.fc(64, true)
	b.fc(proxyClasses, false)
	return b.net
}

// proxyVGG builds a VGG-style proxy from per-stage conv counts.
func proxyVGG(name string, stages []int, seed uint64) *Net {
	b := newBuilder(name, rand.New(rand.NewPCG(seed, 0x7663)))
	chans := []int{8, 16, 32, 48, 48}
	for st, n := range stages {
		for i := 0; i < n; i++ {
			b.conv(chans[st])
		}
		// Pool after the first four stages: 32×32 inputs run out of
		// spatial extent one stage earlier than 224×224.
		if st < 4 {
			b.pool()
		}
	}
	b.fc(96, true)
	b.fc(96, true)
	b.fc(proxyClasses, false)
	return b.net
}

// ProxyVGG11 mirrors VGG-A's 8-conv structure.
func ProxyVGG11(seed uint64) *Net { return proxyVGG("vgg11-proxy", []int{1, 1, 2, 2, 2}, seed) }

// ProxyVGG16 mirrors VGG-D's 13-conv structure.
func ProxyVGG16(seed uint64) *Net { return proxyVGG("vgg16-proxy", []int{2, 2, 3, 3, 3}, seed) }

// ProxyVGG19 mirrors VGG-E's 16-conv structure.
func ProxyVGG19(seed uint64) *Net { return proxyVGG("vgg19-proxy", []int{2, 2, 4, 4, 4}, seed) }

// EmulationProxies returns Fig 19's four networks.
func EmulationProxies(seed uint64) []*Net {
	return []*Net{ProxyAlexNet(seed), ProxyVGG11(seed + 1), ProxyVGG16(seed + 2), ProxyVGG19(seed + 3)}
}
