package emu

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestTensorAccessors(t *testing.T) {
	x := NewTensor(2, 3, 4)
	x.Set(1, 2, 3, 9.5)
	if x.At(1, 2, 3) != 9.5 {
		t.Error("At/Set mismatch")
	}
	if x.Len() != 24 {
		t.Errorf("Len = %d", x.Len())
	}
}

func TestConvOpKnownValues(t *testing.T) {
	// 2×2 input, one channel, 2×2 kernel of ones: output = sum of inputs.
	op := &ConvOp{Label: "c", InC: 1, OutC: 1, K: 2, S: 1,
		W: []float64{1, 1, 1, 1}, B: []float64{0.5}}
	in := NewTensor(2, 2, 1)
	copy(in.Data, []float64{1, 2, 3, 4})
	ctx := &evalCtx{scheme: SchemeFP32}
	out := op.Apply(in, ctx)
	if out.H != 1 || out.W != 1 || out.C != 1 {
		t.Fatalf("shape = %d,%d,%d", out.H, out.W, out.C)
	}
	if out.Data[0] != 10.5 {
		t.Errorf("conv = %v, want 10.5", out.Data[0])
	}
}

func TestConvOpReLUAndPad(t *testing.T) {
	op := &ConvOp{Label: "c", InC: 1, OutC: 1, K: 3, S: 1, Pad: 1,
		W: []float64{0, 0, 0, 0, -1, 0, 0, 0, 0}, B: []float64{0}, ReLU: true}
	in := NewTensor(2, 2, 1)
	copy(in.Data, []float64{1, 2, 3, 4})
	out := op.Apply(in, &evalCtx{scheme: SchemeFP32})
	// Same padding preserves shape; -identity kernel then ReLU zeroes all.
	if out.H != 2 || out.W != 2 {
		t.Fatalf("padded shape = %d,%d", out.H, out.W)
	}
	for _, v := range out.Data {
		if v != 0 {
			t.Errorf("ReLU output = %v", v)
		}
	}
}

func TestConvOpPanicsOnChannelMismatch(t *testing.T) {
	op := &ConvOp{Label: "c", InC: 2, OutC: 1, K: 1, S: 1, W: []float64{1, 1}, B: []float64{0}}
	defer func() {
		if recover() == nil {
			t.Error("channel mismatch accepted")
		}
	}()
	op.Apply(NewTensor(1, 1, 1), &evalCtx{})
}

func TestPoolOp(t *testing.T) {
	op := &PoolOp{Label: "p", K: 2, S: 2}
	in := NewTensor(4, 4, 1)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out := op.Apply(in, nil)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool shape = %d,%d", out.H, out.W)
	}
	// Max of each 2×2 block.
	want := []float64{5, 7, 13, 15}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}

func TestFCOpKnownValues(t *testing.T) {
	op := &FCOp{Label: "f", In: 3, Out: 2,
		W: []float64{1, 0, -1, 0.5, 0.5, 0.5}, B: []float64{0, 1}}
	in := NewTensor(1, 1, 3)
	copy(in.Data, []float64{2, 4, 6})
	out := op.Apply(in, &evalCtx{scheme: SchemeFP32})
	if out.Data[0] != -4 || out.Data[1] != 7 {
		t.Errorf("fc = %v", out.Data)
	}
}

func TestFCOpPanicsOnWidthMismatch(t *testing.T) {
	op := &FCOp{Label: "f", In: 3, Out: 1, W: make([]float64, 3), B: []float64{0}}
	defer func() {
		if recover() == nil {
			t.Error("width mismatch accepted")
		}
	}()
	op.Apply(NewTensor(1, 1, 2), &evalCtx{})
}

func TestQuantizeSnapsToGrid(t *testing.T) {
	ctx := &evalCtx{scheme: SchemeInt8}
	xs := []float64{1.0, -0.501, 0.2501}
	q, scale := ctx.quantize(xs)
	if scale != 1.0 {
		t.Errorf("scale = %v", scale)
	}
	for i, v := range q {
		lsb := 1.0 / 255
		if math.Abs(v-xs[i]) > lsb/2+1e-12 {
			t.Errorf("q[%d] = %v, err too large", i, v)
		}
		// Must sit exactly on the grid.
		g := math.Round(v*255) / 255
		if math.Abs(v-g) > 1e-12 {
			t.Errorf("q[%d] = %v off grid", i, v)
		}
	}
	// FP32 passes through.
	fp := &evalCtx{scheme: SchemeFP32}
	if q2, _ := fp.quantize(xs); &q2[0] != &xs[0] {
		t.Error("fp32 quantize copied")
	}
}

func TestDotNoiseStatistics(t *testing.T) {
	ctx := &evalCtx{
		scheme: SchemePhotonic8,
		noise:  New(1).Noise,
		rng:    rand.New(rand.NewPCG(2, 2)),
	}
	k := 100
	n := 5000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := ctx.dotNoise(k, 1, 1)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	wantMean := float64(k) * 2.32 / 255
	wantStd := 1.65 * 10 / 255
	if math.Abs(mean-wantMean) > wantMean*0.1 {
		t.Errorf("noise mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(std-wantStd) > wantStd*0.15 {
		t.Errorf("noise std = %v, want %v", std, wantStd)
	}
	// Digital schemes add none.
	if (&evalCtx{scheme: SchemeInt8}).dotNoise(10, 1, 1) != 0 {
		t.Error("int8 scheme has noise")
	}
}

func TestPerReadoutNoiseGranularity(t *testing.T) {
	// With N=24 wavelengths per readout, a k-MAC dot product draws
	// ceil(k/24) noise samples instead of k: both mean and σ shrink.
	mkCtx := func(perRd int, seed uint64) *evalCtx {
		return &evalCtx{
			scheme: SchemePhotonic8,
			noise:  New(1).Noise,
			perRd:  perRd,
			rng:    rand.New(rand.NewPCG(seed, seed)),
		}
	}
	k := 240
	n := 4000
	meanOf := func(ctx *evalCtx) float64 {
		var s float64
		for i := 0; i < n; i++ {
			s += ctx.dotNoise(k, 1, 1)
		}
		return s / float64(n)
	}
	perMAC := meanOf(mkCtx(1, 3))
	perReadout := meanOf(mkCtx(24, 3))
	// Mean scales by the draw count ratio: 240 vs 10 draws → 24×.
	ratio := perMAC / perReadout
	if ratio < 20 || ratio > 28 {
		t.Errorf("per-MAC/per-readout mean noise ratio = %.1f, want ≈24", ratio)
	}
}

func TestTopK(t *testing.T) {
	got := TopK([]float64{0.1, 0.9, 0.5, 0.7}, 3)
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK = %v", got)
		}
	}
	if len(TopK([]float64{1, 2}, 5)) != 2 {
		t.Error("TopK should clamp k")
	}
}

func TestProxyShapesRun(t *testing.T) {
	e := New(3)
	for _, net := range EmulationProxies(7) {
		in := NewTensor(net.InH, net.InW, net.InC)
		for i := range in.Data {
			in.Data[i] = 0.5
		}
		logits := e.Run(net, in, SchemeFP32)
		if len(logits) != net.Classes {
			t.Errorf("%s outputs %d logits, want %d", net.Name, len(logits), net.Classes)
		}
	}
}

func TestProxyDepthStructure(t *testing.T) {
	countConvs := func(n *Net) (convs, fcs int) {
		for _, op := range n.Ops {
			switch op.(type) {
			case *ConvOp:
				convs++
			case *FCOp:
				fcs++
			}
		}
		return convs, fcs
	}
	cases := []struct {
		net   *Net
		convs int
	}{
		{ProxyAlexNet(1), 5},
		{ProxyVGG11(1), 8},
		{ProxyVGG16(1), 13},
		{ProxyVGG19(1), 16},
	}
	for _, c := range cases {
		convs, fcs := countConvs(c.net)
		if convs != c.convs || fcs != 3 {
			t.Errorf("%s: %d convs + %d fcs, want %d + 3", c.net.Name, convs, fcs, c.convs)
		}
	}
}

func TestEvaluateFig19Shape(t *testing.T) {
	// Fig 19's qualitative result under the substitution: fp32 agrees with
	// itself perfectly; 8-bit digital stays close; photonic tracks digital
	// within a few percent.
	e := New(5)
	net := ProxyAlexNet(11)
	res := e.Evaluate(net, 30, 13)
	if res[0].Scheme != SchemeFP32 || res[0].Top1 != 1 || res[0].Top5 != 1 {
		t.Errorf("fp32 reference = %+v", res[0])
	}
	if res[1].Top5 < 0.6 {
		t.Errorf("int8 top-5 agreement = %v, too low", res[1].Top5)
	}
	if res[2].Top5 < res[1].Top5-0.25 {
		t.Errorf("photonic top-5 (%v) fell far below digital-8bit (%v)", res[2].Top5, res[1].Top5)
	}
	if res[2].Top1 > res[0].Top1 {
		t.Error("noisy scheme cannot beat the reference at agreement with it")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeFP32.String() != "Digital-32bit" || SchemeInt8.String() != "Digital-8bit" ||
		SchemePhotonic8.String() != "Lightning" {
		t.Error("scheme names wrong")
	}
}

func TestRunDeterministicForDigitalSchemes(t *testing.T) {
	net := ProxyVGG11(2)
	in := NewTensor(net.InH, net.InW, net.InC)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range in.Data {
		in.Data[i] = rng.Float64()
	}
	a := New(1).Run(net, in, SchemeInt8)
	b := New(99).Run(net, in, SchemeInt8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("int8 scheme depends on emulator seed")
		}
	}
}
