// Package datapath implements Lightning's digital datapath modules, each
// driven by the count-action abstraction of §5: the synchronous data
// streamer (§5.1), preamble generation and detection (§5.2), the pipeline
// parallel adder and non-linear units (§5.3), and the layer execution engine
// that ties them to the photonic core.
package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/converter"
	"github.com/lightning-smartnic/lightning/internal/countaction"
	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Preamble voltage levels: H is a high sample, L a low sample.
const (
	HighLevel fixed.Code = 255
	LowLevel  fixed.Code = 0
)

// Matching thresholds separating H/L from each other and from the
// idle-channel noise floor. A sample above HighThreshold reads as H; below
// LowThreshold as L; anything between matches neither.
const (
	HighThreshold fixed.Code = 192
	LowThreshold  fixed.Code = 64
)

// Pattern is a single-cycle preamble pattern: exactly one digital clock
// cycle's worth of H/L samples (true = H). The prototype uses
// HHHHHHHHLLLLLLLL (§6.3).
type Pattern [converter.SamplesPerCycle]bool

// PrototypePattern returns the testbed's pattern: 8 high then 8 low samples.
func PrototypePattern() Pattern {
	var p Pattern
	for i := 0; i < converter.SamplesPerCycle/2; i++ {
		p[i] = true
	}
	return p
}

// ParsePattern builds a pattern from a string of 'H' and 'L' runes, e.g.
// "HHHHHHHHLLLLLLLL".
func ParsePattern(s string) (Pattern, error) {
	var p Pattern
	if len(s) != converter.SamplesPerCycle {
		return p, fmt.Errorf("datapath: pattern %q must have %d symbols", s, converter.SamplesPerCycle)
	}
	for i, r := range s {
		switch r {
		case 'H':
			p[i] = true
		case 'L':
			p[i] = false
		default:
			return p, fmt.Errorf("datapath: pattern symbol %q at %d (want H or L)", r, i)
		}
	}
	return p, nil
}

// String renders the pattern as H/L symbols.
func (p Pattern) String() string {
	b := make([]byte, len(p))
	for i, h := range p {
		if h {
			b[i] = 'H'
		} else {
			b[i] = 'L'
		}
	}
	return string(b)
}

// Codes expands the pattern into analog sample codes.
func (p Pattern) Codes() []fixed.Code {
	out := make([]fixed.Code, len(p))
	for i, h := range p {
		if h {
			out[i] = HighLevel
		} else {
			out[i] = LowLevel
		}
	}
	return out
}

// Shifted returns the pattern as it appears in a readout frame when the
// analog burst started k sample positions into a cycle: sample j of the
// frame carries pattern position (j-k) mod 16, i.e. the pattern rotated
// right by k (Listing 2's "preamble_pattern << k").
func (p Pattern) Shifted(k int) Pattern {
	var out Pattern
	n := len(p)
	for j := 0; j < n; j++ {
		out[j] = p[((j-k)%n+n)%n]
	}
	return out
}

// MatchFrame reports whether an ADC readout frame structurally matches the
// pattern under the H/L thresholds.
func (p Pattern) MatchFrame(f converter.Frame) bool {
	for i, h := range p {
		if h {
			if f[i] < HighThreshold {
				return false
			}
		} else {
			if f[i] > LowThreshold {
				return false
			}
		}
	}
	return true
}

// PreambleConfig selects the preamble for a deployment. P is chosen by SNR
// conditions, not by model ("P is a configurable parameter that is
// model-agnostic and only depends on the signal-to-noise ratio of the
// setup"). The prototype repeats its pattern ten times.
type PreambleConfig struct {
	Pattern Pattern
	// Repetitions is P: how many times the single-cycle pattern repeats.
	Repetitions int
	// MinMatches, when positive, relaxes Listing 2's exact-count targets:
	// a shift fires after MinMatches pattern observations instead of P
	// (or P−1). Listing 2's exact counts are the clean-channel special
	// case; on a noisy channel a corrupted repetition would otherwise
	// strand the count one short of the target forever, so deployments
	// trade preamble overhead (larger P) for corruption slack
	// (MinMatches < P−1). Zero selects the paper's exact-count rule.
	MinMatches int
}

// PrototypePreamble is the testbed configuration: HHHHHHHHLLLLLLLL ×10.
func PrototypePreamble() PreambleConfig {
	return PreambleConfig{Pattern: PrototypePattern(), Repetitions: 10}
}

// Samples returns the preamble's total sample count.
func (c PreambleConfig) Samples() int {
	return c.Repetitions * converter.SamplesPerCycle
}

// Prepend returns the preamble followed by the payload vector — what the
// datapath streams into a DAC for each vector (§5.2: "Lightning adds a
// preamble pattern to each vector in the digital domain before streaming its
// data into the DACs").
func (c PreambleConfig) Prepend(payload []fixed.Code) []fixed.Code {
	out := make([]fixed.Code, 0, c.Samples()+len(payload))
	pat := c.Pattern.Codes()
	for i := 0; i < c.Repetitions; i++ {
		out = append(out, pat...)
	}
	return append(out, payload...)
}

// Detector implements the preamble_detection_per_ADC module of Listing 2
// with one count-action rule per shift k: the k=0 rule targets P counts and
// each k>0 rule targets P-1 (the first, partial repetition never matches a
// shifted pattern).
type Detector struct {
	Config PreambleConfig
	Module *countaction.Module

	rules    [converter.SamplesPerCycle]*countaction.Rule
	shifted  [converter.SamplesPerCycle]Pattern
	detected int // -1 until a rule fires
}

// NewDetector builds a detector for the preamble configuration.
func NewDetector(cfg PreambleConfig) *Detector {
	if cfg.Repetitions < 2 {
		panic("datapath: preamble needs at least 2 repetitions to detect shifted bursts")
	}
	d := &Detector{
		Config:   cfg,
		Module:   countaction.NewModule("preamble_detection_per_ADC"),
		detected: -1,
	}
	for k := 0; k < converter.SamplesPerCycle; k++ {
		k := k
		target := countaction.Value(cfg.Repetitions)
		if k != 0 {
			target = countaction.Value(cfg.Repetitions - 1)
		}
		if cfg.MinMatches > 0 && countaction.Value(cfg.MinMatches) < target {
			target = countaction.Value(cfg.MinMatches)
		}
		d.shifted[k] = cfg.Pattern.Shifted(k)
		d.rules[k] = d.Module.Attach(countaction.New(
			fmt.Sprintf("shift-%02d", k), target,
			func() { d.detected = k },
		))
	}
	return d
}

// Reset rearms the detector for the next vector.
func (d *Detector) Reset() {
	d.detected = -1
	d.Module.Reset()
}

// Offer feeds one ADC readout frame to the detector. It returns the detected
// phase k (the position of the first meaningful sample within a cycle,
// triggering the "stream ADC.data[k:]" action) and true once the preamble
// has been counted the required number of times; until then it returns
// (-1, false).
func (d *Detector) Offer(f converter.Frame) (phase int, ok bool) {
	if d.detected >= 0 {
		return d.detected, true
	}
	for k := range d.rules {
		d.rules[k].Observe(d.shifted[k].MatchFrame(f))
		if d.detected >= 0 {
			return d.detected, true
		}
	}
	return -1, false
}

// Detect runs the detector across a whole readout burst and returns the
// phase and the index of the frame at which detection completed.
func (d *Detector) Detect(frames []converter.Frame) (phase, frameIdx int, ok bool) {
	for i, f := range frames {
		if k, done := d.Offer(f); done {
			return k, i, true
		}
	}
	return -1, len(frames), false
}

// ExtractPayload removes the preamble from a readout burst given the
// detected phase: it returns the meaningful samples starting right after the
// preamble's end. The preamble occupies phase + P·16 samples from the start
// of the burst's first frame.
func (d *Detector) ExtractPayload(frames []converter.Frame, phase, payloadLen int) []fixed.Code {
	start := phase + d.Config.Samples()
	if start > len(frames)*converter.SamplesPerCycle {
		return nil
	}
	return d.ExtractPayloadInto(nil, frames, phase, payloadLen)
}

// ExtractPayloadInto is ExtractPayload with caller-owned storage: the
// payload samples are appended to dst (normally dst[:0] with retained
// capacity), copying only the payload range instead of flattening the whole
// burst — the zero-steady-state-allocation form the engine's scratch uses.
func (d *Detector) ExtractPayloadInto(dst []fixed.Code, frames []converter.Frame, phase, payloadLen int) []fixed.Code {
	start := phase + d.Config.Samples()
	total := len(frames) * converter.SamplesPerCycle
	end := start + payloadLen
	if end > total {
		end = total
	}
	for idx := start; idx < end; idx++ {
		dst = append(dst, frames[idx/converter.SamplesPerCycle][idx%converter.SamplesPerCycle])
	}
	return dst
}
