package datapath

import (
	"math/rand/v2"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/photonic"
)

func TestMultiply16Ideal(t *testing.T) {
	h, err := NewHighPrecisionCore(1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	const fullScale = 65535.0 * 65535.0
	var worstAbs, worstRel float64
	for i := 0; i < 300; i++ {
		a := uint16(rng.IntN(65536))
		b := uint16(rng.IntN(65536))
		got := h.Multiply16(a, b)
		want := float64(a) * float64(b)
		if d := (got - want) / fullScale; d > worstAbs || -d > worstAbs {
			if d < 0 {
				d = -d
			}
			worstAbs = d
		}
		// Relative error is only meaningful for products that drive the
		// high-limb core well above its error floor (≥25% of full
		// scale); smaller products are characterized by the full-scale
		// absolute bound below.
		if want > fullScale*0.25 {
			if e := RelativeError(got, want); e > worstRel {
				worstRel = e
			}
		}
	}
	// Ideal channel: limited only by the per-core calibration residue and
	// extinction floor, composed at full scale.
	if worstAbs > 0.005 {
		t.Errorf("worst full-scale error = %.4f%%", worstAbs*100)
	}
	if worstRel > 0.02 {
		t.Errorf("worst relative error on large products = %.4f", worstRel)
	}
}

func TestMultiply16Corners(t *testing.T) {
	h, err := NewHighPrecisionCore(1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b uint16 }{
		{0, 0}, {0, 65535}, {65535, 65535}, {256, 256}, {255, 255}, {1, 65535},
	}
	// Analog precision composes as absolute error at full scale: each
	// corner must land within 0.5% of the 65535² full-scale range.
	const fullScale = 65535.0 * 65535.0
	for _, c := range cases {
		got := h.Multiply16(c.a, c.b)
		want := float64(c.a) * float64(c.b)
		if d := got - want; d > fullScale*0.005 || d < -fullScale*0.005 {
			t.Errorf("%d×%d = %.0f, want %.0f (err %.3g%% of full scale)",
				c.a, c.b, got, want, (got-want)/fullScale*100)
		}
	}
	// Zero-limb skip makes exact-zero products exactly zero.
	if got := h.Multiply16(0, 65535); got != 0 {
		t.Errorf("0×65535 = %v, want exactly 0 (digital skip)", got)
	}
}

func TestDot16MatchesScalar(t *testing.T) {
	h, err := NewHighPrecisionCore(2, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	n := 32
	a := make([]uint16, n)
	b := make([]uint16, n)
	var want float64
	for i := range a {
		a[i] = uint16(rng.IntN(65536))
		b[i] = uint16(rng.IntN(65536))
		want += float64(a[i]) * float64(b[i])
	}
	got := h.Dot16(a, b)
	if e := RelativeError(got, want); e > 0.01 {
		t.Errorf("Dot16 relative error = %.4f (got %.3g, want %.3g)", e, got, want)
	}
}

func TestDot16PanicsOnMismatch(t *testing.T) {
	h, _ := NewHighPrecisionCore(1, nil, 1)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	h.Dot16([]uint16{1}, []uint16{1, 2})
}

func TestMultiply16WithNoiseDegradesGracefully(t *testing.T) {
	// With the calibrated noise, 16-bit products stay within ~1% —
	// precision extension does not blow up the analog error because the
	// high-limb core dominates the magnitude.
	h, err := NewHighPrecisionCore(1, photonic.CalibratedNoise(9), 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	var sumRel float64
	n := 200
	for i := 0; i < n; i++ {
		a := uint16(20000 + rng.IntN(45000))
		b := uint16(20000 + rng.IntN(45000))
		sumRel += RelativeError(h.Multiply16(a, b), float64(a)*float64(b))
	}
	if mean := sumRel / float64(n); mean > 0.02 {
		t.Errorf("mean relative error under noise = %.4f", mean)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if RelativeError(5, 0) != 1 {
		t.Error("x/0 should be 1")
	}
	if RelativeError(90, 100) != 0.1 {
		t.Error("basic case wrong")
	}
	if RelativeError(-110, -100) != 0.1 {
		t.Error("negative case wrong")
	}
}

func TestLimbs(t *testing.T) {
	hi, lo := limbs(0xabcd)
	if hi != 0xab || lo != 0xcd {
		t.Errorf("limbs = %x, %x", hi, lo)
	}
}
