package datapath

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// digitalAttention is the float reference for the 8-bit attention template,
// mirroring its exact quantization points.
func digitalAttention(wq, wk, wv [][]fixed.Signed, x []fixed.Code, spec AttentionSpec, projShift uint) []float64 {
	d, seq := spec.D, spec.Seq
	project := func(w [][]fixed.Signed) []fixed.Code {
		out := make([]fixed.Code, seq*d)
		for t := 0; t < seq; t++ {
			for o := 0; o < d; o++ {
				var s float64
				for i := 0; i < d; i++ {
					p := float64(w[o][i].Mag) * float64(x[t*d+i]) / 255
					if w[o][i].Neg {
						s -= p
					} else {
						s += p
					}
				}
				out[t*d+o] = Requantize(fixed.Acc(clampI32(s)), projShift)
			}
		}
		return out
	}
	q := project(wq)
	k := project(wk)
	v := project(wv)
	out := make([]float64, seq*d)
	for t := 0; t < seq; t++ {
		row := make([]fixed.Acc, seq)
		for j := 0; j < seq; j++ {
			var s float64
			for i := 0; i < d; i++ {
				s += float64(q[t*d+i]) * float64(k[j*d+i]) / 255
			}
			row[j] = fixed.Acc(clampI32(s)) >> spec.ScoreShift
		}
		probs := Softmax(row)
		for dd := 0; dd < d; dd++ {
			var s float64
			for j := 0; j < seq; j++ {
				s += float64(probs[j]) * float64(v[j*d+dd]) / 255
			}
			out[t*d+dd] = s
		}
	}
	return out
}

func clampI32(s float64) int32 {
	if s > fixed.AccMax {
		return fixed.AccMax
	}
	if s < fixed.AccMin {
		return fixed.AccMin
	}
	return int32(math.Round(s))
}

func randProjection(rng *rand.Rand, d int) [][]fixed.Signed {
	w := make([][]fixed.Signed, d)
	for o := range w {
		w[o] = make([]fixed.Signed, d)
		for i := range w[o] {
			w[o][i] = fixed.Signed{Mag: fixed.Code(rng.IntN(160)), Neg: rng.IntN(2) == 1}
		}
	}
	return w
}

func TestExecuteAttentionMatchesDigital(t *testing.T) {
	e := newTestEngine(t, 2, false)
	spec := AttentionSpec{Seq: 4, D: 8, ScoreShift: 4, OutShift: 0}
	rng := rand.New(rand.NewPCG(13, 13))
	wq := randProjection(rng, spec.D)
	wk := randProjection(rng, spec.D)
	wv := randProjection(rng, spec.D)
	x := make([]fixed.Code, spec.Seq*spec.D)
	for i := range x {
		x[i] = fixed.Code(rng.IntN(256))
	}
	res, err := e.ExecuteAttention(wq, wk, wv, x, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := digitalAttention(wq, wk, wv, x, spec, 3)
	var maxErr float64
	for i := range want {
		if d := math.Abs(float64(res.Out[i]) - want[i]); d > maxErr {
			maxErr = d
		}
	}
	// The analog path accumulates quantization at four stages; stay within
	// a few codes of the digital reference.
	if maxErr > 10 {
		t.Errorf("worst attention output error = %.1f codes", maxErr)
	}
	if res.Stats.PhotonicSteps == 0 {
		t.Error("no photonic steps recorded")
	}
}

func TestAttentionProbabilitiesAreDistributions(t *testing.T) {
	e := newTestEngine(t, 2, false)
	spec := AttentionSpec{Seq: 3, D: 4, ScoreShift: 2}
	rng := rand.New(rand.NewPCG(3, 3))
	w := randProjection(rng, spec.D)
	x := make([]fixed.Code, spec.Seq*spec.D)
	for i := range x {
		x[i] = fixed.Code(rng.IntN(256))
	}
	res, err := e.ExecuteAttention(w, w, w, x, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < spec.Seq; t2++ {
		var sum int
		for j := 0; j < spec.Seq; j++ {
			sum += int(res.Probs[t2*spec.Seq+j])
		}
		if sum < 250 || sum > 260 {
			t.Errorf("row %d probability sum = %d, want ≈255", t2, sum)
		}
	}
}

func TestAttentionAttendsToSimilarToken(t *testing.T) {
	// With identity-like projections, a token must attend most strongly to
	// the token most similar to itself — itself.
	e := newTestEngine(t, 2, false)
	spec := AttentionSpec{Seq: 3, D: 4, ScoreShift: 5}
	eye := make([][]fixed.Signed, spec.D)
	for o := range eye {
		eye[o] = make([]fixed.Signed, spec.D)
		eye[o][o] = fixed.Signed{Mag: 255}
	}
	// Three nearly-orthogonal tokens.
	x := []fixed.Code{
		250, 10, 10, 10,
		10, 250, 10, 10,
		10, 10, 250, 10,
	}
	res, err := e.ExecuteAttention(eye, eye, eye, x, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < 3; t2++ {
		self := res.Probs[t2*3+t2]
		for j := 0; j < 3; j++ {
			if j != t2 && res.Probs[t2*3+j] >= self {
				t.Errorf("token %d attends to %d (%d) at least as much as itself (%d)",
					t2, j, res.Probs[t2*3+j], self)
			}
		}
	}
}

func TestAttentionValidation(t *testing.T) {
	e := newTestEngine(t, 1, false)
	spec := AttentionSpec{Seq: 2, D: 2}
	w := [][]fixed.Signed{make([]fixed.Signed, 2), make([]fixed.Signed, 2)}
	x := make([]fixed.Code, 4)
	if _, err := e.ExecuteAttention(w, w, w, x, AttentionSpec{}, 0); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := e.ExecuteAttention(w, w, w, x[:3], spec, 0); err == nil {
		t.Error("wrong input length accepted")
	}
	bad := [][]fixed.Signed{make([]fixed.Signed, 2)}
	if _, err := e.ExecuteAttention(bad, w, w, x, spec, 0); err == nil {
		t.Error("wrong projection shape accepted")
	}
}
