package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/axi"
	"github.com/lightning-smartnic/lightning/internal/converter"
	"github.com/lightning-smartnic/lightning/internal/countaction"
	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Streamer is the synchronous data streamer of §5.1 (Listing 1). It owns the
// parallel DAC lanes and, each digital clock cycle, counts Σ DAC[i].valid
// with a count-action rule whose target is the number of DACs. Only when
// every lane holds valid data does it stream a cycle's worth of samples into
// the photonic cores — guaranteeing element-wise alignment of the operand
// vectors even when off-chip memory delivers one lane late (requirement R3).
type Streamer struct {
	DACs   []*converter.DAC
	Module *countaction.Module

	rule *countaction.Rule
	sink func(lanes [][]fixed.Code)

	// Cycles counts digital clock cycles ticked; StallCycles counts the
	// cycles where at least one DAC was starved and nothing streamed.
	Cycles, StallCycles uint64
}

// NewStreamer builds a streamer over n DAC lanes with the given per-lane
// FIFO depth. sink receives each streamed cycle: one SamplesPerCycle-long
// slice per lane ("stream DAC[i].data into photonic cores").
func NewStreamer(n, fifoDepth int, sink func(lanes [][]fixed.Code)) *Streamer {
	if n <= 0 {
		panic("datapath: streamer needs at least one DAC")
	}
	s := &Streamer{
		DACs:   make([]*converter.DAC, n),
		Module: countaction.NewModule("synchronous_data_streamer"),
		sink:   sink,
	}
	for i := range s.DACs {
		s.DACs[i] = converter.NewDAC(fifoDepth)
	}
	s.rule = s.Module.Attach(countaction.New("sum-dac-valid", countaction.Value(n), nil))
	return s
}

// Feed pushes samples into lane i's DAC FIFO, returning how many were
// accepted before back-pressure.
func (s *Streamer) Feed(lane int, samples []fixed.Code) int {
	if lane < 0 || lane >= len(s.DACs) {
		panic(fmt.Sprintf("datapath: feed to lane %d of %d", lane, len(s.DACs)))
	}
	accepted := 0
	for _, c := range samples {
		if err := s.DACs[lane].In.Push(axi.Beat[fixed.Code]{Data: c}); err != nil {
			break
		}
		accepted++
	}
	return accepted
}

// Tick advances one digital clock cycle: the count-action rule checks
// Σ DAC[i].valid against the DAC count; on a hit every lane emits its
// parallel samples into the sink. It reports whether data streamed.
func (s *Streamer) Tick() bool {
	s.Cycles++
	var sum countaction.Value
	for _, d := range s.DACs {
		sum += d.ValidCount()
	}
	if !s.rule.Check(sum) {
		s.StallCycles++
		return false
	}
	// Element-wise correctness (R3) requires the lanes to advance in
	// lockstep: emit the same sample count from every DAC this cycle,
	// bounded by the shallowest lane and the converter parallelism.
	n := converter.SamplesPerCycle
	for _, d := range s.DACs {
		if l := d.In.Len(); l < n {
			n = l
		}
	}
	lanes := make([][]fixed.Code, len(s.DACs))
	for i, d := range s.DACs {
		lanes[i] = d.EmitN(n)
	}
	if s.sink != nil {
		s.sink(lanes)
	}
	return true
}

// Pending reports the deepest lane occupancy, for drain loops.
func (s *Streamer) Pending() int {
	max := 0
	for _, d := range s.DACs {
		if n := d.In.Len(); n > max {
			max = n
		}
	}
	return max
}

// Run ticks until every lane drains or maxCycles elapses, returning the
// number of cycles consumed. It is the test harness's convenience loop; the
// NIC engine ticks the streamer itself.
func (s *Streamer) Run(maxCycles int) int {
	for c := 0; c < maxCycles; c++ {
		s.Tick()
		if s.Pending() == 0 {
			return c + 1
		}
	}
	return maxCycles
}
