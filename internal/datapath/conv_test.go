package datapath

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// digitalConv is the reference implementation.
func digitalConv(kernels [][]fixed.Signed, input []fixed.Code, spec ConvSpec) []float64 {
	oh, ow := spec.OutDims()
	out := make([]float64, oh*ow*spec.OutC)
	for oc := 0; oc < spec.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float64
				i := 0
				for ky := 0; ky < spec.K; ky++ {
					for kx := 0; kx < spec.K; kx++ {
						for c := 0; c < spec.InC; c++ {
							w := kernels[oc][i]
							x := input[((oy*spec.S+ky)*spec.InW+(ox*spec.S+kx))*spec.InC+c]
							p := float64(w.Mag) * float64(x) / 255
							if w.Neg {
								s -= p
							} else {
								s += p
							}
							i++
						}
					}
				}
				out[(oy*ow+ox)*spec.OutC+oc] = s
			}
		}
	}
	return out
}

func TestExecuteConvMatchesDigital(t *testing.T) {
	e := newTestEngine(t, 2, false)
	spec := ConvSpec{InH: 6, InW: 6, InC: 2, OutC: 3, K: 3, S: 1}
	rng := rand.New(rand.NewPCG(5, 5))
	kernels := make([][]fixed.Signed, spec.OutC)
	for oc := range kernels {
		kernels[oc] = make([]fixed.Signed, spec.WindowSize())
		for i := range kernels[oc] {
			kernels[oc][i] = fixed.Signed{Mag: fixed.Code(rng.IntN(256)), Neg: rng.IntN(2) == 1}
		}
	}
	input := make([]fixed.Code, spec.InH*spec.InW*spec.InC)
	for i := range input {
		input[i] = fixed.Code(rng.IntN(256))
	}
	res, err := e.ExecuteConv(kernels, input, spec, ActIdentity, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := digitalConv(kernels, input, spec)
	if res.OutH != 4 || res.OutW != 4 {
		t.Fatalf("out dims = %dx%d", res.OutH, res.OutW)
	}
	for i := range want {
		if math.Abs(float64(res.Raw[i])-want[i]) > 12 {
			t.Errorf("output %d = %d, want %.1f", i, res.Raw[i], want[i])
		}
	}
	if res.Stats.PhotonicSteps == 0 {
		t.Error("no photonic steps")
	}
}

func TestExecuteConvKernelReuse(t *testing.T) {
	e := newTestEngine(t, 2, false)
	spec := ConvSpec{InH: 10, InW: 10, InC: 1, OutC: 4, K: 3, S: 1}
	kernels := make([][]fixed.Signed, spec.OutC)
	for oc := range kernels {
		kernels[oc] = make([]fixed.Signed, spec.WindowSize())
		for i := range kernels[oc] {
			kernels[oc][i] = fixed.Signed{Mag: 10}
		}
	}
	input := make([]fixed.Code, 100)
	res, err := e.ExecuteConv(kernels, input, spec, ActIdentity, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 8×8 = 64 windows per channel, but only OutC kernel fetches.
	if res.KernelFetches != 4 {
		t.Errorf("kernel fetches = %d, want 4 (register-file reuse)", res.KernelFetches)
	}
}

func TestExecuteConvReLUAndShift(t *testing.T) {
	e := newTestEngine(t, 2, false)
	spec := ConvSpec{InH: 3, InW: 3, InC: 1, OutC: 2, K: 3, S: 1}
	kernels := [][]fixed.Signed{
		make([]fixed.Signed, 9), // all-negative kernel
		make([]fixed.Signed, 9), // all-positive kernel
	}
	for i := 0; i < 9; i++ {
		kernels[0][i] = fixed.Signed{Mag: 200, Neg: true}
		kernels[1][i] = fixed.Signed{Mag: 200}
	}
	input := make([]fixed.Code, 9)
	for i := range input {
		input[i] = 255
	}
	res, err := e.ExecuteConv(kernels, input, spec, ActReLU, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw[0] != 0 {
		t.Errorf("negative channel after ReLU = %d", res.Raw[0])
	}
	if res.Raw[1] < 1500 {
		t.Errorf("positive channel = %d, want ≈1800", res.Raw[1])
	}
	if res.Quantized[1] != Requantize(res.Raw[1], 2) {
		t.Error("quantized inconsistent with shift")
	}
}

func TestExecuteConvValidation(t *testing.T) {
	e := newTestEngine(t, 1, false)
	good := ConvSpec{InH: 4, InW: 4, InC: 1, OutC: 1, K: 3, S: 1}
	kernel := [][]fixed.Signed{make([]fixed.Signed, 9)}
	input := make([]fixed.Code, 16)
	if _, err := e.ExecuteConv(kernel, input, ConvSpec{}, ActIdentity, 0); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := e.ExecuteConv(kernel, input, ConvSpec{InH: 2, InW: 2, InC: 1, OutC: 1, K: 3, S: 1}, ActIdentity, 0); err == nil {
		t.Error("kernel > input accepted")
	}
	if _, err := e.ExecuteConv(nil, input, good, ActIdentity, 0); err == nil {
		t.Error("missing kernels accepted")
	}
	if _, err := e.ExecuteConv([][]fixed.Signed{make([]fixed.Signed, 4)}, input, good, ActIdentity, 0); err == nil {
		t.Error("wrong kernel size accepted")
	}
	if _, err := e.ExecuteConv(kernel, input[:5], good, ActIdentity, 0); err == nil {
		t.Error("wrong input size accepted")
	}
}

func TestConvSpecDims(t *testing.T) {
	s := ConvSpec{InH: 227, InW: 227, InC: 3, OutC: 96, K: 11, S: 4}
	oh, ow := s.OutDims()
	if oh != 55 || ow != 55 {
		t.Errorf("AlexNet conv1 dims = %dx%d, want 55x55", oh, ow)
	}
	if s.WindowSize() != 11*11*3 {
		t.Errorf("window = %d", s.WindowSize())
	}
}

func TestMaxPool2(t *testing.T) {
	// 4×4×1 map with increasing values.
	in := make([]fixed.Code, 16)
	for i := range in {
		in[i] = fixed.Code(i)
	}
	out, oh, ow := MaxPool2(in, 4, 4, 1)
	if oh != 2 || ow != 2 {
		t.Fatalf("pooled dims = %dx%d", oh, ow)
	}
	want := []fixed.Code{5, 7, 13, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("pool[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	// Multi-channel pooling keeps channels independent.
	in2 := make([]fixed.Code, 4*4*2)
	for i := 0; i < 16; i++ {
		in2[i*2] = fixed.Code(i)     // channel 0
		in2[i*2+1] = fixed.Code(100) // channel 1 constant
	}
	out2, _, _ := MaxPool2(in2, 4, 4, 2)
	if out2[0] != 5 || out2[1] != 100 {
		t.Errorf("multi-channel pool = %d, %d", out2[0], out2[1])
	}
}

// TestSmallCNNThroughDatapath drives a two-stage conv→pool→fc network
// through the engine end-to-end and checks it against the digital
// reference — the §5.4 scenario of reconfiguring the same datapath
// templates from FC to conv geometry.
func TestSmallCNNThroughDatapath(t *testing.T) {
	e := newTestEngine(t, 2, false)
	rng := rand.New(rand.NewPCG(8, 8))
	spec := ConvSpec{InH: 8, InW: 8, InC: 1, OutC: 2, K: 3, S: 1}
	kernels := make([][]fixed.Signed, spec.OutC)
	for oc := range kernels {
		kernels[oc] = make([]fixed.Signed, spec.WindowSize())
		for i := range kernels[oc] {
			kernels[oc][i] = fixed.Signed{Mag: fixed.Code(rng.IntN(128)), Neg: rng.IntN(3) == 0}
		}
	}
	input := make([]fixed.Code, 64)
	for i := range input {
		input[i] = fixed.Code(rng.IntN(256))
	}
	conv, err := e.ExecuteConv(kernels, input, spec, ActReLU, 3)
	if err != nil {
		t.Fatal(err)
	}
	pooled, ph, pw := MaxPool2(conv.Quantized, conv.OutH, conv.OutW, spec.OutC)
	if ph != 3 || pw != 3 {
		t.Fatalf("pooled dims = %dx%d", ph, pw)
	}
	// FC head over the pooled map.
	fcW := make([][]fixed.Signed, 2)
	for j := range fcW {
		fcW[j] = make([]fixed.Signed, len(pooled))
		for i := range fcW[j] {
			fcW[j][i] = fixed.Signed{Mag: fixed.Code(rng.IntN(256)), Neg: j == 1}
		}
	}
	res := e.ExecuteFC(fcW, pooled, ActIdentity, 0)
	want := digitalFC(fcW, pooled)
	for j := range want {
		if math.Abs(float64(res.Raw[j])-want[j]) > 25 {
			t.Errorf("cnn head output %d = %d, want %.1f", j, res.Raw[j], want[j])
		}
	}
}
