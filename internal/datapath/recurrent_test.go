package datapath

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

func rnnParams(rng *rand.Rand, hidden, in int) ([][]fixed.Signed, [][]fixed.Signed, []fixed.Acc) {
	mk := func(rows, cols int) [][]fixed.Signed {
		w := make([][]fixed.Signed, rows)
		for j := range w {
			w[j] = make([]fixed.Signed, cols)
			for i := range w[j] {
				w[j][i] = fixed.Signed{Mag: fixed.Code(rng.IntN(120)), Neg: rng.IntN(2) == 1}
			}
		}
		return w
	}
	bias := make([]fixed.Acc, hidden)
	for j := range bias {
		bias[j] = fixed.Acc(rng.IntN(64))
	}
	return mk(hidden, in), mk(hidden, hidden), bias
}

// digitalRNNStep is the reference for one cell step.
func digitalRNNStep(wx, wh [][]fixed.Signed, bias []fixed.Acc, x, h []fixed.Code, shift uint) []fixed.Code {
	hidden := len(wx)
	dot := func(w []fixed.Signed, v []fixed.Code) float64 {
		var s float64
		for i := range w {
			p := float64(w[i].Mag) * float64(v[i]) / 255
			if w[i].Neg {
				s -= p
			} else {
				s += p
			}
		}
		return s
	}
	out := make([]fixed.Code, hidden)
	for j := 0; j < hidden; j++ {
		s := dot(wx[j], x) + float64(bias[j]) + dot(wh[j], h)
		if s < 0 {
			s = 0
		}
		out[j] = Requantize(fixed.Acc(clampI32(s)), shift)
	}
	return out
}

func TestRNNCellStepMatchesDigital(t *testing.T) {
	e := newTestEngine(t, 2, false)
	rng := rand.New(rand.NewPCG(21, 21))
	spec := RNNSpec{In: 12, Hidden: 6, Shift: 1, Act: ActReLU}
	wx, wh, bias := rnnParams(rng, spec.Hidden, spec.In)
	cell, err := NewRNNCell(spec, wx, wh, bias)
	if err != nil {
		t.Fatal(err)
	}
	hRef := make([]fixed.Code, spec.Hidden)
	for step := 0; step < 4; step++ {
		x := make([]fixed.Code, spec.In)
		for i := range x {
			x[i] = fixed.Code(rng.IntN(256))
		}
		got, stats, err := cell.Step(e, x)
		if err != nil {
			t.Fatal(err)
		}
		hRef = digitalRNNStep(wx, wh, bias, x, hRef, spec.Shift)
		for j := range hRef {
			if math.Abs(float64(got[j])-float64(hRef[j])) > 4 {
				t.Errorf("step %d hidden[%d] = %d, want %d", step, j, got[j], hRef[j])
			}
			// Keep the reference aligned with the analog path so
			// quantization drift doesn't compound across steps.
			hRef[j] = got[j]
		}
		if stats.PhotonicSteps == 0 {
			t.Error("no photonic work")
		}
	}
	if cell.Steps != 4 {
		t.Errorf("Steps = %d", cell.Steps)
	}
}

func TestRNNCellStatePersistsAndResets(t *testing.T) {
	e := newTestEngine(t, 2, false)
	spec := RNNSpec{In: 2, Hidden: 2, Act: ActReLU}
	wx := [][]fixed.Signed{{{Mag: 255}, {}}, {{}, {Mag: 255}}}
	wh := [][]fixed.Signed{{{Mag: 128}, {}}, {{}, {Mag: 128}}}
	cell, err := NewRNNCell(spec, wx, wh, []fixed.Acc{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	x := []fixed.Code{100, 100}
	h1, _, _ := cell.Step(e, x)
	h2, _, _ := cell.Step(e, x)
	// The recurrent term makes the second state larger than the first.
	if h2[0] <= h1[0] {
		t.Errorf("state not accumulating: %d then %d", h1[0], h2[0])
	}
	cell.Reset()
	if cell.Hidden()[0] != 0 || cell.Steps != 0 {
		t.Error("Reset incomplete")
	}
}

func TestRNNRunSequence(t *testing.T) {
	e := newTestEngine(t, 2, false)
	rng := rand.New(rand.NewPCG(4, 4))
	spec := RNNSpec{In: 8, Hidden: 4, Shift: 1, Act: ActReLU}
	wx, wh, bias := rnnParams(rng, spec.Hidden, spec.In)
	cell, err := NewRNNCell(spec, wx, wh, bias)
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([][]fixed.Code, 5)
	for i := range tokens {
		tokens[i] = make([]fixed.Code, spec.In)
		for j := range tokens[i] {
			tokens[i][j] = fixed.Code(rng.IntN(256))
		}
	}
	h, stats, err := cell.RunSequence(e, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != spec.Hidden {
		t.Errorf("hidden width = %d", len(h))
	}
	if stats.PhotonicSteps == 0 || cell.Steps != 5 {
		t.Errorf("sequence accounting: steps=%d photonic=%d", cell.Steps, stats.PhotonicSteps)
	}
	// A malformed token aborts with position info.
	if _, _, err := cell.RunSequence(e, [][]fixed.Code{make([]fixed.Code, 3)}); err == nil {
		t.Error("bad token accepted")
	}
}

func TestNewRNNCellValidation(t *testing.T) {
	ok := [][]fixed.Signed{{{}, {}}, {{}, {}}}
	if _, err := NewRNNCell(RNNSpec{}, ok, ok, nil); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := NewRNNCell(RNNSpec{In: 3, Hidden: 2}, ok, ok, nil); err == nil {
		t.Error("Wx shape mismatch accepted")
	}
	wx := [][]fixed.Signed{make([]fixed.Signed, 3), make([]fixed.Signed, 3)}
	if _, err := NewRNNCell(RNNSpec{In: 3, Hidden: 2}, wx, wx, nil); err == nil {
		t.Error("Wh shape mismatch accepted")
	}
}
