package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Recurrent template (§4 lists "recurrent layers" among the datapath
// templates). An Elman-style RNN cell is two photonic matrix products per
// time step plus a digital add and activation:
//
//	h_t = act(Wx·x_t + Wh·h_{t-1} + b)
//
// The input projection streams Wx against the incoming token; the recurrent
// projection streams Wh against the previous hidden state, which lives in
// SRAM as 8-bit activation codes like any other layer boundary.

// RNNSpec is the template geometry.
type RNNSpec struct {
	// In is the input token width, Hidden the state width.
	In, Hidden int
	// Shift requantizes the hidden state each step.
	Shift uint
	Act   Activation
}

// Validate checks the geometry.
func (r RNNSpec) Validate() error {
	if r.In <= 0 || r.Hidden <= 0 {
		return fmt.Errorf("datapath: rnn spec needs positive In/Hidden: %+v", r)
	}
	return nil
}

// RNNCell holds the cell's quantized parameters and hidden state.
type RNNCell struct {
	Spec   RNNSpec
	Wx, Wh [][]fixed.Signed
	Bias   []fixed.Acc

	h []fixed.Code
	// Steps counts processed tokens.
	Steps uint64
}

// NewRNNCell builds a cell. Wx is Hidden×In, Wh is Hidden×Hidden.
func NewRNNCell(spec RNNSpec, wx, wh [][]fixed.Signed, bias []fixed.Acc) (*RNNCell, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(wx) != spec.Hidden || len(wx[0]) != spec.In {
		return nil, fmt.Errorf("datapath: Wx is %dx%d, want %dx%d", len(wx), len(wx[0]), spec.Hidden, spec.In)
	}
	if len(wh) != spec.Hidden || len(wh[0]) != spec.Hidden {
		return nil, fmt.Errorf("datapath: Wh is %dx%d, want %dx%d", len(wh), len(wh[0]), spec.Hidden, spec.Hidden)
	}
	return &RNNCell{Spec: spec, Wx: wx, Wh: wh, Bias: bias, h: make([]fixed.Code, spec.Hidden)}, nil
}

// Hidden returns the current hidden-state codes.
func (c *RNNCell) Hidden() []fixed.Code { return c.h }

// Reset zeroes the hidden state.
func (c *RNNCell) Reset() {
	c.h = make([]fixed.Code, c.Spec.Hidden)
	c.Steps = 0
}

// Step processes one input token through the engine and returns the new
// hidden state, plus the step's cycle accounting.
func (c *RNNCell) Step(e *Engine, x []fixed.Code) ([]fixed.Code, LayerStats, error) {
	if len(x) != c.Spec.In {
		return nil, LayerStats{}, fmt.Errorf("datapath: rnn token has %d codes, want %d", len(x), c.Spec.In)
	}
	// Input projection with bias.
	rx := e.ExecuteFCBias(c.Wx, c.Bias, x, ActIdentity, 0)
	// Recurrent projection against the stored state.
	rh := e.ExecuteFC(c.Wh, c.h, ActIdentity, 0)
	stats := rx.Stats
	stats.Add(rh.Stats)

	// Digital combine + activation + requantize.
	combined := make([]fixed.Acc, c.Spec.Hidden)
	for j := range combined {
		combined[j] = fixed.SatAdd(rx.Raw[j], rh.Raw[j])
	}
	switch c.Spec.Act {
	case ActReLU:
		combined = ReLUVec(combined)
		stats.ComputeCycles += CyclesReLU
	case ActSoftmax:
		stats.ComputeCycles += CyclesSoftmax
	}
	c.h = RequantizeVec(combined, c.Spec.Shift)
	c.Steps++
	return c.h, stats, nil
}

// RunSequence folds a token sequence through the cell, returning the final
// hidden state and the aggregate stats.
func (c *RNNCell) RunSequence(e *Engine, tokens [][]fixed.Code) ([]fixed.Code, LayerStats, error) {
	var agg LayerStats
	for i, tok := range tokens {
		_, st, err := c.Step(e, tok)
		if err != nil {
			return nil, agg, fmt.Errorf("token %d: %w", i, err)
		}
		agg.Add(st)
	}
	return c.h, agg, nil
}
