package datapath

import (
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
	"github.com/lightning-smartnic/lightning/internal/photonic"
)

// TestRunDotZeroSteadyStateAllocs guards the engine's per-neuron hot path:
// once the scratch has grown to the layer geometry (one warm-up call), a dot
// product through the full analog+digital pipeline — sign partition, DAC
// burst, ADC framing, preamble detection, cross-cycle reassembly, adder
// tree — must not allocate.
func TestRunDotZeroSteadyStateAllocs(t *testing.T) {
	core, err := photonic.NewCore(2, photonic.CalibratedNoise(1))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(core, 1)
	w := make([]fixed.Signed, 64)
	x := make([]fixed.Code, 64)
	for i := range w {
		w[i] = fixed.Signed{Mag: fixed.Code(i*3 + 1), Neg: i%3 == 0}
		x[i] = fixed.Code(255 - i)
	}
	adder := NewCrossCycleAdder(1)
	adder.Gain = e.Core.FullScaleLanes
	var stats LayerStats
	e.runDot(w, x, adder, &stats) // warm-up: grows scratch, bakes preamble
	var sink fixed.Acc
	if n := testing.AllocsPerRun(100, func() {
		sink += e.runDot(w, x, adder, &stats)
	}); n != 0 {
		t.Fatalf("runDot allocates %v times per call in steady state, want 0", n)
	}
	_ = sink
}

// TestRunDotScratchRegrowth checks the cold path the guard above never
// exercises: a wider layer after a narrow one must regrow the scratch and
// still produce the same result as a fresh engine (the scratch is pure
// working storage, never carried state).
func TestRunDotScratchRegrowth(t *testing.T) {
	mk := func() (*Engine, *CrossCycleAdder) {
		core, err := photonic.NewCore(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(core, 1)
		a := NewCrossCycleAdder(1)
		a.Gain = e.Core.FullScaleLanes
		return e, a
	}
	wide := make([]fixed.Signed, 200)
	x := make([]fixed.Code, 200)
	for i := range wide {
		wide[i] = fixed.Signed{Mag: fixed.Code(i + 1), Neg: i%2 == 0}
		x[i] = fixed.Code(i)
	}

	e1, a1 := mk()
	var s1 LayerStats
	e1.runDot(wide[:8], x[:8], a1, &s1) // narrow first: scratch sized small
	got := e1.runDot(wide, x, a1, &s1)  // then wide: forces regrowth

	e2, a2 := mk()
	var s2 LayerStats
	want := e2.runDot(wide, x, a2, &s2) // fresh engine, scratch sized wide
	if got != want {
		t.Fatalf("regrown scratch changed the result: %d != %d", got, want)
	}
}
