package datapath

import (
	"math/rand/v2"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

func randMatrix(rng *rand.Rand, rows, cols int, mag int) [][]fixed.Signed {
	w := make([][]fixed.Signed, rows)
	for j := range w {
		w[j] = make([]fixed.Signed, cols)
		for i := range w[j] {
			w[j][i] = fixed.Signed{Mag: fixed.Code(rng.IntN(mag)), Neg: rng.IntN(2) == 1}
		}
	}
	return w
}

func testBlock(t *testing.T, rng *rand.Rand) (*TransformerBlock, TransformerSpec) {
	t.Helper()
	spec := TransformerSpec{
		Seq: 3, D: 8, Heads: 2, FFN: 16,
		AttnSpec: AttentionSpec{ScoreShift: 3, OutShift: 0},
		FFNShift: 3, OutShift: 3, ProjShift: 2,
	}
	blk, err := NewTransformerBlock(spec,
		randMatrix(rng, spec.D, spec.D, 120),
		randMatrix(rng, spec.D, spec.D, 120),
		randMatrix(rng, spec.D, spec.D, 120),
		randMatrix(rng, spec.FFN, spec.D, 120),
		randMatrix(rng, spec.D, spec.FFN, 120),
	)
	if err != nil {
		t.Fatal(err)
	}
	return blk, spec
}

func TestTransformerBlockExecutes(t *testing.T) {
	e := newTestEngine(t, 2, false)
	rng := rand.New(rand.NewPCG(31, 31))
	blk, spec := testBlock(t, rng)
	x := make([]fixed.Code, spec.Seq*spec.D)
	for i := range x {
		x[i] = fixed.Code(rng.IntN(256))
	}
	out, stats, err := blk.Execute(e, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != spec.Seq*spec.D {
		t.Fatalf("output width = %d", len(out))
	}
	if stats.PhotonicSteps == 0 || stats.ComputeCycles == 0 {
		t.Errorf("stats empty: %+v", stats)
	}
	// Residual paths guarantee the output carries the input's energy:
	// all-zero output would mean the residuals were dropped.
	var sum int
	for _, c := range out {
		sum += int(c)
	}
	if sum == 0 {
		t.Error("block output all-zero despite residual connections")
	}
}

func TestTransformerBlockDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	blk, spec := testBlock(t, rng)
	x := make([]fixed.Code, spec.Seq*spec.D)
	for i := range x {
		x[i] = fixed.Code(i * 11 % 256)
	}
	e1 := newTestEngine(t, 2, false)
	e2 := newTestEngine(t, 2, false)
	o1, _, err := blk.Execute(e1, x)
	if err != nil {
		t.Fatal(err)
	}
	o2, _, err := blk.Execute(e2, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, o1[i], o2[i])
		}
	}
}

func TestTransformerResidualPassThrough(t *testing.T) {
	// With all-zero weights, attention and FFN contribute nothing except
	// the uniform attention average of zero values: the block reduces to
	// its residual connections and must return the input (double residual
	// saturating at 255).
	e := newTestEngine(t, 2, false)
	spec := TransformerSpec{
		Seq: 2, D: 4, Heads: 1, FFN: 4,
		AttnSpec: AttentionSpec{ScoreShift: 1},
	}
	zeros := func(r, c int) [][]fixed.Signed {
		w := make([][]fixed.Signed, r)
		for j := range w {
			w[j] = make([]fixed.Signed, c)
		}
		return w
	}
	blk, err := NewTransformerBlock(spec, zeros(4, 4), zeros(4, 4), zeros(4, 4), zeros(4, 4), zeros(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	x := []fixed.Code{10, 20, 30, 40, 50, 60, 70, 80}
	out, _, err := blk.Execute(e, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if out[i] != x[i] {
			t.Errorf("out[%d] = %d, want %d (pure residual)", i, out[i], x[i])
		}
	}
}

func TestTransformerValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	d4 := randMatrix(rng, 4, 4, 10)
	if _, err := NewTransformerBlock(TransformerSpec{Seq: 2, D: 4, Heads: 3, FFN: 4},
		d4, d4, d4, d4, d4); err == nil {
		t.Error("D not divisible by Heads accepted")
	}
	if _, err := NewTransformerBlock(TransformerSpec{}, d4, d4, d4, d4, d4); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := NewTransformerBlock(TransformerSpec{Seq: 2, D: 4, Heads: 2, FFN: 8},
		d4, d4, d4, d4, d4); err == nil {
		t.Error("wrong FFN shape accepted")
	}
	blk, err := NewTransformerBlock(TransformerSpec{Seq: 2, D: 4, Heads: 2, FFN: 4,
		AttnSpec: AttentionSpec{ScoreShift: 1}},
		d4, d4, d4, randMatrix(rng, 4, 4, 10), randMatrix(rng, 4, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, 2, false)
	if _, _, err := blk.Execute(e, make([]fixed.Code, 3)); err == nil {
		t.Error("wrong input width accepted")
	}
}
