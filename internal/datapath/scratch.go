package datapath

import (
	"github.com/lightning-smartnic/lightning/internal/converter"
	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// engineScratch is the engine's reusable per-dot working storage. Every
// slice runDot touches on the per-neuron path lives here and is resized —
// never reallocated in steady state — so executing a layer performs zero
// allocations per output neuron once the buffers have grown to the layer's
// geometry (see DESIGN.md §11).
//
// Ownership follows the engine's single-owner contract: an Engine (and so
// its scratch) belongs to exactly one shard goroutine at a time, the same
// rule the sharded NIC already enforces for the photonic core and DRAM
// reader it wraps. Nothing here is safe for concurrent use, and runDot is
// not reentrant — callers must not feed slices that alias the scratch back
// into the engine.
type engineScratch struct {
	// posW/posX and negW/negX hold the sign-partitioned operand groups
	// (capacity ≥ the layer's input width).
	posW, posX, negW, negX []fixed.Code
	// posParts, negParts hold each group's analog partial readings,
	// filled by Core.DotPartialsInto.
	posParts, negParts []float64
	// negs holds the per-partial sign controls for the cross-cycle adder.
	negs []bool
	// burst is the DAC stream for one dot: baked preamble samples followed
	// by the analog partials.
	burst []float64
	// frames is the ADC readout for the burst.
	frames []converter.Frame
	// payload is the preamble-stripped sample stream.
	payload []fixed.Code
	// pre is the preamble prepended to every burst, baked once as analog
	// samples; preCfg records the config it was baked from so a
	// reconfigured engine lazily re-bakes.
	pre    []float64
	preCfg PreambleConfig
	baked  bool

	// Batch dimension (runDotBatch): the same per-dot storage extended to
	// Q concurrent queries sharing one burst. bW/bX hold every query's
	// sign-partitioned operands flattened back to back; bounds delimits
	// the 2Q groups (pos then neg per query) for the core's batch pass;
	// qPos/qParts record each query's positive-group and total partial
	// counts so the shared payload can be sliced back per query; bParts
	// collects the concatenated analog partials.
	bW, bX []fixed.Code
	bounds []int
	qPos   []int
	qParts []int
	bParts []float64
}

// ensure is runDot's cold path: it re-bakes the preamble prefix if the
// engine's preamble config changed and grows the operand buffers to the
// layer width n. After it returns, the hot body runs on indexed writes and
// reslices only.
func (s *engineScratch) ensure(cfg PreambleConfig, n int) {
	if !s.baked || s.preCfg != cfg {
		codes := cfg.Prepend(nil)
		s.pre = make([]float64, len(codes))
		for i, c := range codes {
			s.pre[i] = float64(c)
		}
		s.preCfg = cfg
		s.baked = true
	}
	if cap(s.posW) < n {
		s.posW = make([]fixed.Code, n)
		s.posX = make([]fixed.Code, n)
		s.negW = make([]fixed.Code, n)
		s.negX = make([]fixed.Code, n)
	}
	// One partial per analog step, at most one step per element pair, so n
	// bounds the partial count whatever the lane width.
	if cap(s.negs) < n {
		s.negs = make([]bool, n)
	}
	if cap(s.burst) < len(s.pre)+n {
		s.burst = make([]float64, len(s.pre)+n)
	}
}

// ensureBatch is runDotBatch's cold path: ensure for the per-query staging
// buffers, then grow the batch-dimension storage to q queries of layer
// width n. A query contributes at most n operands (and so at most n
// partials), so q·n bounds every flattened buffer.
func (s *engineScratch) ensureBatch(cfg PreambleConfig, n, q int) {
	s.ensure(cfg, n)
	total := n * q
	if cap(s.bW) < total {
		s.bW = make([]fixed.Code, total)
		s.bX = make([]fixed.Code, total)
	}
	if cap(s.bounds) < 2*q+1 {
		s.bounds = make([]int, 2*q+1)
	}
	if cap(s.qPos) < q {
		s.qPos = make([]int, q)
		s.qParts = make([]int, q)
	}
	if cap(s.negs) < total {
		s.negs = make([]bool, total)
	}
	if cap(s.burst) < len(s.pre)+total {
		s.burst = make([]float64, len(s.pre)+total)
	}
}
