package datapath

import (
	"math/bits"

	"github.com/lightning-smartnic/lightning/internal/converter"
	"github.com/lightning-smartnic/lightning/internal/countaction"
	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// This file implements the pipeline parallel digital adder module of §5.3
// and Fig 10: a cross-cycle adder-subtractor that accumulates the
// non-negative photonic partial results with their pre-separated signs, and
// an intra-cycle adder tree that folds the 16 parallel lanes into a single
// dot-product value once the whole vector has been accumulated (Listing 3).

// Lanes is the adder parallelism: one adder-subtractor per ADC sample lane.
const Lanes = converter.SamplesPerCycle

// CrossCycleAdder is the 16-lane cross-cycle adder-subtractor. Each lane
// accumulates one sample per digital cycle, adding or subtracting according
// to the paired sign control signal. A count-action rule counts accumulated
// samples; its target — vector_length / num_accumulation_wavelengths,
// i.e. the number of photonic partials per dot product — triggers the
// intra-cycle adder stage.
type CrossCycleAdder struct {
	Module *countaction.Module

	// Gain is the constant multiplier re-applying the detector's
	// full-scale division: when the photonic core accumulates over N
	// wavelengths at an N-lane ADC full scale, every sample carries 1/N
	// of the true partial and the adder multiplies by N. Zero means 1.
	Gain int

	lanes [Lanes]fixed.Acc
	rule  *countaction.Rule
	ready bool
}

// NewCrossCycleAdder builds the adder. partialsPerDot configures the
// count-action target: how many photonic partial results make up one full
// dot product (Listing 3's vector_length / num_accumulation_wavelengths).
func NewCrossCycleAdder(partialsPerDot int) *CrossCycleAdder {
	a := &CrossCycleAdder{Module: countaction.NewModule("cross_cycle_adder_subtractor")}
	a.rule = a.Module.Attach(countaction.New(
		"sum-valid", countaction.Value(partialsPerDot),
		func() { a.ready = true },
	))
	return a
}

// SetPartialsPerDot retargets the rule at runtime (DAG reconfiguration for a
// different layer geometry).
func (a *CrossCycleAdder) SetPartialsPerDot(n int) {
	a.rule.SetTarget(countaction.Value(n))
}

// Accumulate feeds up to Lanes samples (one digital cycle's ADC readout,
// already preamble-aligned) with their sign controls. Samples are 8-bit
// codes zero-padded to 16 bits; lane i adds or subtracts sample i. It
// reports whether the dot product completed this cycle.
func (a *CrossCycleAdder) Accumulate(samples []fixed.Code, negs []bool) bool {
	if len(samples) > Lanes {
		panic("datapath: more samples than adder lanes")
	}
	if len(negs) != len(samples) {
		panic("datapath: sign control width mismatch")
	}
	gain := a.Gain
	if gain < 1 {
		gain = 1
	}
	fired := false
	for i, s := range samples {
		g := int32(s) * int32(gain)
		if g > fixed.AccMax {
			g = fixed.AccMax
		}
		v := fixed.Acc(g)
		if negs[i] {
			a.lanes[i%Lanes] = fixed.SatSub(a.lanes[i%Lanes], v)
		} else {
			a.lanes[i%Lanes] = fixed.SatAdd(a.lanes[i%Lanes], v)
		}
		if a.rule.Add(1) {
			fired = true
		}
	}
	return fired
}

// Ready reports whether a completed vector awaits the intra-cycle adder.
func (a *CrossCycleAdder) Ready() bool { return a.ready }

// Drain returns the 16 per-lane partial sums and clears the lanes for the
// next dot product ("stream cross_cycle_adder_subtractor[i].data").
func (a *CrossCycleAdder) Drain() [Lanes]fixed.Acc {
	out := a.lanes
	a.lanes = [Lanes]fixed.Acc{}
	a.ready = false
	return out
}

// Reset clears lanes, rules, and readiness.
func (a *CrossCycleAdder) Reset() {
	a.lanes = [Lanes]fixed.Acc{}
	a.ready = false
	a.Module.Reset()
}

// TreeSum folds lane partial sums into one value with a binary adder tree
// and returns the result together with the pipeline latency in clock cycles:
// log2(k) for k inputs ("The intra-cycle adder requires log k clock cycles,
// where k is the number of parallel data samples in each ADC readout").
func TreeSum(lanes []fixed.Acc) (sum fixed.Acc, cycles int) {
	if len(lanes) == 0 {
		return 0, 0
	}
	work := make([]fixed.Acc, len(lanes))
	copy(work, lanes)
	return TreeSumInPlace(work)
}

// TreeSumInPlace is TreeSum folding directly inside work (which it
// clobbers) — the allocation-free form the engine uses on the cross-cycle
// adder's drained lane array. The pairing order matches TreeSum exactly, so
// saturation behaviour is identical.
func TreeSumInPlace(work []fixed.Acc) (sum fixed.Acc, cycles int) {
	if len(work) == 0 {
		return 0, 0
	}
	for n := len(work); n > 1; cycles++ {
		m := 0
		for i := 0; i < n; i += 2 {
			if i+1 < n {
				work[m] = fixed.SatAdd(work[i], work[i+1])
			} else {
				work[m] = work[i]
			}
			m++
		}
		n = m
	}
	return work[0], cycles
}

// TreeCycles returns the intra-cycle adder latency for k parallel samples
// without performing a sum: ceil(log2(k)).
func TreeCycles(k int) int {
	if k <= 1 {
		return 0
	}
	return bits.Len(uint(k - 1))
}
