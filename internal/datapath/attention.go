package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Attention template. §4 lists attention layers among the datapath templates
// the DAG configuration loader can select. A single-head self-attention
// block decomposes entirely into operations the datapath already has:
//
//   - Q/K/V projections: fully-connected layers (weights × activations).
//   - Score matrix Q·Kᵀ: photonic dot products of two *dynamic* operand
//     streams — the photonic core multiplies whatever voltages arrive, so
//     activation×activation products need no new hardware.
//   - Row-wise softmax: the digital non-linear unit.
//   - Weighted value sum: photonic dot products of probabilities × values.
//
// Everything is unsigned 8-bit on the analog side; Q/K/V activations are
// requantized to codes between stages like any other layer boundary.

// AttentionSpec is the template geometry: Seq tokens of dimension D with a
// single head (multi-head runs the template once per head on sliced
// projections).
type AttentionSpec struct {
	Seq, D int
	// ScoreShift requantizes Q·Kᵀ scores onto the softmax input scale.
	ScoreShift uint
	// OutShift requantizes the attention output activations.
	OutShift uint
}

// Validate checks the geometry.
func (a AttentionSpec) Validate() error {
	if a.Seq <= 0 || a.D <= 0 {
		return fmt.Errorf("datapath: attention spec needs positive Seq and D: %+v", a)
	}
	return nil
}

// AttentionResult is one executed attention block.
type AttentionResult struct {
	// Out holds Seq×D output activation codes (token-major).
	Out []fixed.Code
	// Probs holds the Seq×Seq attention probability codes, for
	// inspection.
	Probs []fixed.Code
	Stats LayerStats
}

// ExecuteAttention runs single-head self-attention over Seq tokens of
// dimension D. wq, wk, wv are D×D sign/magnitude projection matrices
// (row-major: weights[out][in]); x holds Seq×D input activation codes.
// projShift requantizes the Q/K/V projections.
func (e *Engine) ExecuteAttention(wq, wk, wv [][]fixed.Signed, x []fixed.Code, spec AttentionSpec, projShift uint) (AttentionResult, error) {
	var res AttentionResult
	if err := spec.Validate(); err != nil {
		return res, err
	}
	if len(x) != spec.Seq*spec.D {
		return res, fmt.Errorf("datapath: attention input has %d codes, want %d", len(x), spec.Seq*spec.D)
	}
	for name, w := range map[string][][]fixed.Signed{"wq": wq, "wk": wk, "wv": wv} {
		if len(w) != spec.D {
			return res, fmt.Errorf("datapath: %s has %d rows, want %d", name, len(w), spec.D)
		}
	}

	token := func(m []fixed.Code, t int) []fixed.Code { return m[t*spec.D : (t+1)*spec.D] }

	// Q/K/V projections: one FC execution per token per matrix.
	project := func(w [][]fixed.Signed) []fixed.Code {
		out := make([]fixed.Code, spec.Seq*spec.D)
		for t := 0; t < spec.Seq; t++ {
			r := e.ExecuteFC(w, token(x, t), ActIdentity, projShift)
			res.Stats.Add(r.Stats)
			copy(out[t*spec.D:], r.Quantized)
		}
		return out
	}
	q := project(wq)
	k := project(wk)
	v := project(wv)

	// Score matrix: photonic dot products of dynamic Q and K streams.
	adder := NewCrossCycleAdder(1)
	adder.Gain = e.Core.FullScaleLanes
	scores := make([]fixed.Acc, spec.Seq*spec.Seq)
	signs := make([]fixed.Signed, spec.D)
	for ti := 0; ti < spec.Seq; ti++ {
		qi := token(q, ti)
		for i, c := range qi {
			signs[i] = fixed.Signed{Mag: c} // activations are non-negative
		}
		for tj := 0; tj < spec.Seq; tj++ {
			scores[ti*spec.Seq+tj] = e.runDot(signs, token(k, tj), adder, &res.Stats)
		}
	}

	// Row-wise softmax in the digital non-linear unit.
	res.Probs = make([]fixed.Code, spec.Seq*spec.Seq)
	for t := 0; t < spec.Seq; t++ {
		row := make([]fixed.Acc, spec.Seq)
		for j := range row {
			row[j] = fixed.Acc(int32(scores[t*spec.Seq+j]) >> spec.ScoreShift)
		}
		copy(res.Probs[t*spec.Seq:], Softmax(row))
		res.Stats.ComputeCycles += CyclesSoftmax
	}

	// Output: probability-weighted sum of V, again photonic products of
	// two dynamic streams (probabilities × values), one dot product per
	// output element.
	res.Out = make([]fixed.Code, spec.Seq*spec.D)
	probRow := make([]fixed.Signed, spec.Seq)
	col := make([]fixed.Code, spec.Seq)
	for t := 0; t < spec.Seq; t++ {
		for j := 0; j < spec.Seq; j++ {
			probRow[j] = fixed.Signed{Mag: res.Probs[t*spec.Seq+j]}
		}
		for d := 0; d < spec.D; d++ {
			for j := 0; j < spec.Seq; j++ {
				col[j] = v[j*spec.D+d]
			}
			acc := e.runDot(probRow, col, adder, &res.Stats)
			res.Out[t*spec.D+d] = Requantize(acc, spec.OutShift)
		}
	}
	return res, nil
}
