package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Convolution template. §5.4's example reconfiguration: "the datapath
// modules are reconfigured to perform convolutions with kernel size 3×3 on
// ImageNet images" — a convolution lowers to one photonic dot product per
// output element, with the kernel weights read from DRAM once and reused
// from the local register file (§4's memory controller behaviour).

// ConvSpec is a convolution layer's datapath geometry: valid padding,
// square kernel.
type ConvSpec struct {
	InH, InW, InC int
	OutC          int
	K, S          int
}

// OutDims returns the output feature-map dimensions.
func (c ConvSpec) OutDims() (oh, ow int) {
	return (c.InH-c.K)/c.S + 1, (c.InW-c.K)/c.S + 1
}

// Validate checks the geometry.
func (c ConvSpec) Validate() error {
	if c.InH <= 0 || c.InW <= 0 || c.InC <= 0 || c.OutC <= 0 || c.K <= 0 || c.S <= 0 {
		return fmt.Errorf("datapath: conv spec needs positive dimensions: %+v", c)
	}
	if c.K > c.InH || c.K > c.InW {
		return fmt.Errorf("datapath: conv kernel %d exceeds input %dx%d", c.K, c.InH, c.InW)
	}
	return nil
}

// WindowSize is the dot-product length per output element: K·K·InC.
func (c ConvSpec) WindowSize() int { return c.K * c.K * c.InC }

// ConvResult is the output of one convolution layer execution.
type ConvResult struct {
	// Raw holds OutH×OutW×OutC accumulator outputs (C-fastest), after the
	// activation.
	Raw []fixed.Acc
	// Quantized holds the requantized 8-bit activations.
	Quantized  []fixed.Code
	OutH, OutW int
	Stats      LayerStats
	// KernelFetches counts weight reads: exactly OutC with register-file
	// reuse — independent of the output map size.
	KernelFetches uint64
}

// ExecuteConv runs a convolution layer through the photonic pipeline: the
// input feature map is H×W×C codes (C-fastest), kernels[oc] is the flattened
// K×K×InC sign/magnitude kernel for output channel oc. Each output element
// is one photonic dot product (window × kernel) through the same
// preamble/ADC/adder path as ExecuteFC; the kernel is fetched once per
// output channel and reused across all windows.
func (e *Engine) ExecuteConv(kernels [][]fixed.Signed, input []fixed.Code, spec ConvSpec, act Activation, requantShift uint) (ConvResult, error) {
	var res ConvResult
	if err := spec.Validate(); err != nil {
		return res, err
	}
	if len(kernels) != spec.OutC {
		return res, fmt.Errorf("datapath: %d kernels for %d output channels", len(kernels), spec.OutC)
	}
	win := spec.WindowSize()
	for oc, k := range kernels {
		if len(k) != win {
			return res, fmt.Errorf("datapath: kernel %d has %d weights, want %d", oc, len(k), win)
		}
	}
	if len(input) != spec.InH*spec.InW*spec.InC {
		return res, fmt.Errorf("datapath: input has %d samples, spec wants %d",
			len(input), spec.InH*spec.InW*spec.InC)
	}

	oh, ow := spec.OutDims()
	res.OutH, res.OutW = oh, ow
	res.Raw = make([]fixed.Acc, oh*ow*spec.OutC)
	adder := NewCrossCycleAdder(1)
	adder.Gain = e.Core.FullScaleLanes
	res.Stats.DatapathCycles += PerLayerOverheadCycles

	window := make([]fixed.Code, win)
	for oc := 0; oc < spec.OutC; oc++ {
		// One kernel fetch per output channel: the register file holds it
		// for every window of the feature map.
		kernel := kernels[oc]
		res.KernelFetches++
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gatherWindow(input, spec, oy, ox, window)
				v := e.runDot(kernel, window, adder, &res.Stats)
				res.Raw[(oy*ow+ox)*spec.OutC+oc] = v
			}
		}
	}
	switch act {
	case ActReLU:
		res.Raw = ReLUVec(res.Raw)
		res.Stats.ComputeCycles += CyclesReLU
	case ActSoftmax:
		res.Stats.ComputeCycles += CyclesSoftmax
	}
	res.Quantized = RequantizeVec(res.Raw, requantShift)
	return res, nil
}

// gatherWindow copies the im2col window for output position (oy, ox) into
// dst (K×K×InC, matching the kernel layout).
func gatherWindow(input []fixed.Code, spec ConvSpec, oy, ox int, dst []fixed.Code) {
	i := 0
	for ky := 0; ky < spec.K; ky++ {
		iy := oy*spec.S + ky
		rowBase := (iy*spec.InW + ox*spec.S) * spec.InC
		n := spec.K * spec.InC
		copy(dst[i:i+n], input[rowBase:rowBase+n])
		i += n
	}
}

// MaxPool2 applies a 2×2 stride-2 max pool to an H×W×C code map — the
// digital pooling template between convolution layers.
func MaxPool2(input []fixed.Code, h, w, c int) (out []fixed.Code, oh, ow int) {
	oh, ow = h/2, w/2
	out = make([]fixed.Code, oh*ow*c)
	at := func(y, x, ch int) fixed.Code { return input[(y*w+x)*c+ch] }
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for ch := 0; ch < c; ch++ {
				m := at(2*y, 2*x, ch)
				for _, v := range []fixed.Code{at(2*y, 2*x+1, ch), at(2*y+1, 2*x, ch), at(2*y+1, 2*x+1, ch)} {
					if v > m {
						m = v
					}
				}
				out[(y*ow+x)*c+ch] = m
			}
		}
	}
	return out, oh, ow
}
