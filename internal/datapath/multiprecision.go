package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/fixed"
	"github.com/lightning-smartnic/lightning/internal/photonic"
)

// Beyond 8-bit precision (§10): "The key idea is to represent a 32-bit
// floating point number as four 8-bit numbers. The four 8-bit numbers
// require four Lightning photonic vector dot product cores with an
// additional fix-point-to-float converter to be implemented in Lightning's
// datapath for post-processing."
//
// This file implements the 16-bit instantiation of that scheme: each 16-bit
// operand splits into a high and a low 8-bit limb, the four limb cross
// products run on four photonic cores in parallel, and the digital
// post-processing stage recombines them with the appropriate radix shifts:
//
//	a·b = ah·bh·2¹⁶ + (ah·bl + al·bh)·2⁸ + al·bl
//
// Chip area and power scale by 4× on the photonic side, as §10 projects.

// HighPrecisionCore wires four 8-bit photonic cores into a 16-bit
// multiply-accumulate engine.
type HighPrecisionCore struct {
	// cores[0]=hh, cores[1]=hl, cores[2]=lh, cores[3]=ll limb products.
	cores [4]*photonic.Core
}

// NewHighPrecisionCore builds the four-core engine; each core gets lanes
// wavelengths and an independently seeded copy of the noise model (nil for
// ideal channels).
func NewHighPrecisionCore(lanes int, noise *photonic.NoiseModel, seed uint64) (*HighPrecisionCore, error) {
	h := &HighPrecisionCore{}
	for i := range h.cores {
		var nm *photonic.NoiseModel
		if noise != nil {
			nm = photonic.NewNoiseModel(noise.Mean, noise.Sigma, seed+uint64(i))
		}
		c, err := photonic.NewCore(lanes, nm)
		if err != nil {
			return nil, fmt.Errorf("datapath: building limb core %d: %w", i, err)
		}
		h.cores[i] = c
	}
	return h, nil
}

// limbs splits a 16-bit operand into its high and low 8-bit limbs.
func limbs(x uint16) (hi, lo fixed.Code) {
	return fixed.Code(x >> 8), fixed.Code(x & 0xff)
}

// Multiply16 computes a·b for 16-bit unsigned operands through the four
// photonic cores and the digital recombination stage. The result is the
// analog estimate of the exact 32-bit product a×b, in natural units (the
// per-core readings are scaled by 255 and shifted per limb weight).
//
// Limb products with a zero operand are skipped digitally — the operands
// live in the digital domain, so the datapath knows they contribute nothing
// and never schedules the analog step (the same sparse skip the engine
// applies to zero weights). This matters because a modulator's finite
// extinction ratio leaks a fraction of a code even at zero drive, and the
// 2¹⁶ limb weight would amplify that leakage.
//
// The scheme's precision composes like any analog system: each core
// contributes a small absolute error at its own full scale, so the combined
// result carries ≈0.2% of *full-scale* (65535²) absolute error rather than
// a bounded relative error for arbitrarily small products.
func (h *HighPrecisionCore) Multiply16(a, b uint16) float64 {
	ah, al := limbs(a)
	bh, bl := limbs(b)
	mul := func(core *photonic.Core, x, y fixed.Code) float64 {
		if x == 0 || y == 0 {
			return 0
		}
		return core.Multiply(x, y) * 255
	}
	hh := mul(h.cores[0], ah, bh)
	hl := mul(h.cores[1], ah, bl)
	lh := mul(h.cores[2], al, bh)
	ll := mul(h.cores[3], al, bl)
	return hh*65536 + (hl+lh)*256 + ll
}

// Dot16 computes Σ a_i·b_i for 16-bit vectors, running the four limb dot
// products across the cores and recombining once — the vectorized form the
// datapath pipeline uses.
func (h *HighPrecisionCore) Dot16(a, b []uint16) float64 {
	if len(a) != len(b) {
		panic("datapath: Dot16 operand length mismatch")
	}
	n := len(a)
	ah := make([]fixed.Code, n)
	al := make([]fixed.Code, n)
	bh := make([]fixed.Code, n)
	bl := make([]fixed.Code, n)
	for i := range a {
		ah[i], al[i] = limbs(a[i])
		bh[i], bl[i] = limbs(b[i])
	}
	hh := dotSkipZeros(h.cores[0], ah, bh) * 255
	hl := dotSkipZeros(h.cores[1], ah, bl) * 255
	lh := dotSkipZeros(h.cores[2], al, bh) * 255
	ll := dotSkipZeros(h.cores[3], al, bl) * 255
	return hh*65536 + (hl+lh)*256 + ll
}

// dotSkipZeros computes a dot product skipping element pairs with a zero
// operand, as the digital scheduler does before streaming.
func dotSkipZeros(core *photonic.Core, a, b []fixed.Code) float64 {
	fa := make([]fixed.Code, 0, len(a))
	fb := make([]fixed.Code, 0, len(b))
	for i := range a {
		if a[i] != 0 && b[i] != 0 {
			fa = append(fa, a[i])
			fb = append(fb, b[i])
		}
	}
	if len(fa) == 0 {
		return 0
	}
	return core.Dot(fa, fb)
}

// RelativeError is a convenience for tests and benchmarks: |got-want|/want
// with a guard for zero.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	if want < 0 {
		want = -want
	}
	return d / want
}
