package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Transformer block template: multi-head attention over sliced projections,
// a two-layer feed-forward network, and digital residual additions —
// composing the attention, FC, and non-linear templates into the block the
// BERT/GPT-2 simulation models are made of.

// TransformerSpec is the block geometry. D must divide evenly into Heads.
type TransformerSpec struct {
	Seq, D, Heads int
	// FFN is the feed-forward hidden width.
	FFN int
	// Shifts: attention internals, FFN hidden, and block output.
	AttnSpec  AttentionSpec
	FFNShift  uint
	OutShift  uint
	ProjShift uint
}

// Validate checks the geometry.
func (s TransformerSpec) Validate() error {
	if s.Seq <= 0 || s.D <= 0 || s.Heads <= 0 || s.FFN <= 0 {
		return fmt.Errorf("datapath: transformer spec needs positive dims: %+v", s)
	}
	if s.D%s.Heads != 0 {
		return fmt.Errorf("datapath: D=%d not divisible by Heads=%d", s.D, s.Heads)
	}
	return nil
}

// TransformerBlock holds one block's quantized parameters. Projections are
// D×D (heads are slices of the output), FFN matrices are FFN×D and D×FFN.
type TransformerBlock struct {
	Spec       TransformerSpec
	WQ, WK, WV [][]fixed.Signed
	W1, W2     [][]fixed.Signed
}

// NewTransformerBlock validates shapes and builds the block.
func NewTransformerBlock(spec TransformerSpec, wq, wk, wv, w1, w2 [][]fixed.Signed) (*TransformerBlock, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	check := func(name string, w [][]fixed.Signed, rows, cols int) error {
		if len(w) != rows || len(w[0]) != cols {
			return fmt.Errorf("datapath: %s is %dx%d, want %dx%d", name, len(w), len(w[0]), rows, cols)
		}
		return nil
	}
	for _, c := range []error{
		check("WQ", wq, spec.D, spec.D),
		check("WK", wk, spec.D, spec.D),
		check("WV", wv, spec.D, spec.D),
		check("W1", w1, spec.FFN, spec.D),
		check("W2", w2, spec.D, spec.FFN),
	} {
		if c != nil {
			return nil, c
		}
	}
	return &TransformerBlock{Spec: spec, WQ: wq, WK: wk, WV: wv, W1: w1, W2: w2}, nil
}

// headSlice extracts head h's rows from a D×D projection: rows
// [h·dh, (h+1)·dh) so each head projects into its own dh-wide subspace.
func headSlice(w [][]fixed.Signed, h, dh int) [][]fixed.Signed {
	return w[h*dh : (h+1)*dh]
}

// Execute runs the block over Seq×D activation codes: per-head attention on
// sliced projections, head concatenation, residual add, then the FFN with a
// second residual. Residual additions happen digitally on the requantized
// code domain with saturation.
func (b *TransformerBlock) Execute(e *Engine, x []fixed.Code) ([]fixed.Code, LayerStats, error) {
	spec := b.Spec
	var stats LayerStats
	if len(x) != spec.Seq*spec.D {
		return nil, stats, fmt.Errorf("datapath: transformer input has %d codes, want %d", len(x), spec.Seq*spec.D)
	}
	dh := spec.D / spec.Heads

	// Multi-head attention: each head runs the attention template over its
	// projection slice, producing Seq×dh outputs concatenated along D.
	attnOut := make([]fixed.Code, spec.Seq*spec.D)
	for h := 0; h < spec.Heads; h++ {
		hs := AttentionSpec{
			Seq:        spec.Seq,
			D:          dh,
			ScoreShift: spec.AttnSpec.ScoreShift,
			OutShift:   spec.AttnSpec.OutShift,
		}
		// Per-head projections are dh×D matrices; the attention template
		// wants square dh×dh over dh-wide tokens, so project tokens down
		// first: q_t = WQ_h · x_t, a dh-wide FC per token.
		qh := b.projectHead(e, headSlice(b.WQ, h, dh), x, &stats)
		kh := b.projectHead(e, headSlice(b.WK, h, dh), x, &stats)
		vh := b.projectHead(e, headSlice(b.WV, h, dh), x, &stats)
		headRes, err := runHeadAttention(e, qh, kh, vh, hs, &stats)
		if err != nil {
			return nil, stats, err
		}
		for t := 0; t < spec.Seq; t++ {
			copy(attnOut[t*spec.D+h*dh:t*spec.D+(h+1)*dh], headRes[t*dh:(t+1)*dh])
		}
	}
	// Residual 1.
	res1 := addResidual(attnOut, x)

	// FFN per token with residual 2.
	out := make([]fixed.Code, spec.Seq*spec.D)
	for t := 0; t < spec.Seq; t++ {
		tok := res1[t*spec.D : (t+1)*spec.D]
		h1 := e.ExecuteFC(b.W1, tok, ActReLU, spec.FFNShift)
		stats.Add(h1.Stats)
		h2 := e.ExecuteFC(b.W2, h1.Quantized, ActIdentity, spec.OutShift)
		stats.Add(h2.Stats)
		copy(out[t*spec.D:], h2.Quantized)
	}
	return addResidual(out, res1), stats, nil
}

// projectHead applies a dh×D projection to every token.
func (b *TransformerBlock) projectHead(e *Engine, w [][]fixed.Signed, x []fixed.Code, stats *LayerStats) []fixed.Code {
	spec := b.Spec
	dh := len(w)
	out := make([]fixed.Code, spec.Seq*dh)
	for t := 0; t < spec.Seq; t++ {
		r := e.ExecuteFC(w, x[t*spec.D:(t+1)*spec.D], ActIdentity, spec.ProjShift)
		stats.Add(r.Stats)
		copy(out[t*dh:], r.Quantized)
	}
	return out
}

// runHeadAttention is the score/softmax/weighted-sum core of the attention
// template over pre-projected per-head Q/K/V codes.
func runHeadAttention(e *Engine, q, k, v []fixed.Code, spec AttentionSpec, stats *LayerStats) ([]fixed.Code, error) {
	adder := NewCrossCycleAdder(1)
	adder.Gain = e.Core.FullScaleLanes
	seq, d := spec.Seq, spec.D
	out := make([]fixed.Code, seq*d)
	signs := make([]fixed.Signed, d)
	probRow := make([]fixed.Signed, seq)
	col := make([]fixed.Code, seq)
	for t := 0; t < seq; t++ {
		for i := 0; i < d; i++ {
			signs[i] = fixed.Signed{Mag: q[t*d+i]}
		}
		row := make([]fixed.Acc, seq)
		for j := 0; j < seq; j++ {
			s := e.runDot(signs, k[j*d:(j+1)*d], adder, stats)
			row[j] = fixed.Acc(int32(s) >> spec.ScoreShift)
		}
		probs := Softmax(row)
		stats.ComputeCycles += CyclesSoftmax
		for j := 0; j < seq; j++ {
			probRow[j] = fixed.Signed{Mag: probs[j]}
		}
		for dd := 0; dd < d; dd++ {
			for j := 0; j < seq; j++ {
				col[j] = v[j*d+dd]
			}
			acc := e.runDot(probRow, col, adder, stats)
			out[t*d+dd] = Requantize(acc, spec.OutShift)
		}
	}
	return out, nil
}

// addResidual adds two code maps with saturation at 255.
func addResidual(a, b []fixed.Code) []fixed.Code {
	out := make([]fixed.Code, len(a))
	for i := range a {
		s := int(a[i]) + int(b[i])
		if s > fixed.MaxCode {
			s = fixed.MaxCode
		}
		out[i] = fixed.Code(s)
	}
	return out
}
