package datapath

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// batchLayer builds a deterministic layer (weights, bias) and q input
// vectors of width in, mixing signs, zeros and saturating magnitudes.
func batchLayer(out, in, q int) (weights [][]fixed.Signed, bias []fixed.Acc, xs [][]fixed.Code) {
	weights = make([][]fixed.Signed, out)
	for j := range weights {
		weights[j] = make([]fixed.Signed, in)
		for i := range weights[j] {
			weights[j][i] = fixed.Signed{
				Mag: fixed.Code((i*7 + j*31) % 256),
				Neg: (i+j)%3 == 0,
			}
		}
	}
	bias = make([]fixed.Acc, out)
	for j := range bias {
		bias[j] = fixed.Acc((j%5 - 2) * 40)
	}
	xs = make([][]fixed.Code, q)
	for qi := range xs {
		xs[qi] = make([]fixed.Code, in)
		for i := range xs[qi] {
			xs[qi][i] = fixed.Code((i*13 + qi*57 + 5) % 256)
		}
	}
	return weights, bias, xs
}

// TestExecuteFCBiasBatchMatchesSerialNoiseless is the datapath half of the
// batch/serial equivalence contract: on an ideal channel, one matrix-matrix
// pass over Q queries produces bit-identical per-query outputs to Q serial
// ExecuteFCBias calls on a fresh engine, for every activation and batch
// size. Noiseless results are a pure function of (weights, input) — the ADC
// phase and idle-noise draws never reach payload samples — so rng stream
// divergence between the two schedules cannot show through.
func TestExecuteFCBiasBatchMatchesSerialNoiseless(t *testing.T) {
	for _, act := range []Activation{ActIdentity, ActReLU, ActSoftmax} {
		for _, q := range []int{1, 2, 3, 5, 8} {
			t.Run(fmt.Sprintf("act%d/batch%d", act, q), func(t *testing.T) {
				weights, bias, xs := batchLayer(6, 37, q)

				be := newTestEngine(t, 2, false)
				got := be.ExecuteFCBiasBatch(weights, bias, xs, act, 2)
				if len(got.PerQuery) != q {
					t.Fatalf("batch returned %d results for %d queries", len(got.PerQuery), q)
				}

				var serialSteps uint64
				for qi, x := range xs {
					se := newTestEngine(t, 2, false)
					want := se.ExecuteFCBias(weights, bias, x, act, 2)
					serialSteps += want.Stats.PhotonicSteps
					g := got.PerQuery[qi]
					if !reflect.DeepEqual(g.Raw, want.Raw) {
						t.Fatalf("query %d Raw diverged:\nbatch  %v\nserial %v", qi, g.Raw, want.Raw)
					}
					if !reflect.DeepEqual(g.Quantized, want.Quantized) {
						t.Fatalf("query %d Quantized diverged:\nbatch  %v\nserial %v", qi, g.Quantized, want.Quantized)
					}
					if !reflect.DeepEqual(g.Probs, want.Probs) {
						t.Fatalf("query %d Probs diverged:\nbatch  %v\nserial %v", qi, g.Probs, want.Probs)
					}
				}
				// The analog work is conserved: batching amortizes framing and
				// detection, never photonic steps.
				if got.Stats.PhotonicSteps != serialSteps {
					t.Fatalf("batch PhotonicSteps = %d, serial total = %d", got.Stats.PhotonicSteps, serialSteps)
				}
				if got.Stats.PreambleMisses != 0 {
					t.Fatalf("preamble misses = %d", got.Stats.PreambleMisses)
				}
			})
		}
	}
}

// TestExecuteFCBiasBatchOfOneBitIdenticalNoisy pins the stronger batch=1
// guarantee: with a noise model attached, a batch-of-one pass consumes the
// rng streams in exact lockstep with the serial path — same analog steps,
// same ADC phase draw, same idle-noise draws — so results AND stats are
// bit-identical, not merely statistically close.
func TestExecuteFCBiasBatchOfOneBitIdenticalNoisy(t *testing.T) {
	weights, bias, xs := batchLayer(5, 41, 1)

	se := newTestEngine(t, 2, true)
	want := se.ExecuteFCBias(weights, bias, xs[0], ActSoftmax, 1)

	be := newTestEngine(t, 2, true)
	got := be.ExecuteFCBiasBatch(weights, bias, xs, ActSoftmax, 1)

	g := got.PerQuery[0]
	if !reflect.DeepEqual(g.Raw, want.Raw) {
		t.Fatalf("batch-of-1 Raw diverged:\nbatch  %v\nserial %v", g.Raw, want.Raw)
	}
	if !reflect.DeepEqual(g.Quantized, want.Quantized) || !reflect.DeepEqual(g.Probs, want.Probs) {
		t.Fatal("batch-of-1 quantized/probs diverged from serial")
	}
	if got.Stats != want.Stats {
		t.Fatalf("batch-of-1 stats diverged:\nbatch  %+v\nserial %+v", got.Stats, want.Stats)
	}
}

// TestRunDotBatchAllZeroProducts: queries whose products are all zero take
// no analog step and read back zero, exactly like the serial sparse skip —
// including when only some queries in the batch are all-zero.
func TestRunDotBatchAllZeroProducts(t *testing.T) {
	e := newTestEngine(t, 2, false)
	weights := [][]fixed.Signed{{{Mag: 0}, {Mag: 100}, {Mag: 0}}}
	xs := [][]fixed.Code{
		{200, 0, 200}, // all products zero
		{0, 50, 0},    // one live product
		{1, 0, 9},     // all products zero again
	}
	res := e.ExecuteFCBatch(weights, xs, ActIdentity, 0)
	if res.PerQuery[0].Raw[0] != 0 || res.PerQuery[2].Raw[0] != 0 {
		t.Errorf("all-zero queries produced %d, %d; want 0, 0",
			res.PerQuery[0].Raw[0], res.PerQuery[2].Raw[0])
	}
	if res.PerQuery[1].Raw[0] == 0 {
		t.Error("live query read back zero")
	}

	// A batch where EVERY query is all-zero must skip the burst entirely.
	e2 := newTestEngine(t, 2, false)
	res2 := e2.ExecuteFCBatch(weights, [][]fixed.Code{{200, 0, 200}, {7, 0, 7}}, ActIdentity, 0)
	if res2.Stats.PhotonicSteps != 0 {
		t.Errorf("photonic steps = %d, want 0 (all-zero batch)", res2.Stats.PhotonicSteps)
	}
}

// TestRunDotBatchZeroSteadyStateAllocs guards the batched per-neuron hot
// path, mirroring TestRunDotZeroSteadyStateAllocs: once the batch scratch
// has grown to the layer geometry × batch size, a batched dot across the
// full analog+digital pipeline must not allocate.
func TestRunDotBatchZeroSteadyStateAllocs(t *testing.T) {
	e := newTestEngine(t, 2, true)
	const q, in = 8, 64
	w := make([]fixed.Signed, in)
	for i := range w {
		w[i] = fixed.Signed{Mag: fixed.Code(i*3 + 1), Neg: i%3 == 0}
	}
	xs := make([][]fixed.Code, q)
	for qi := range xs {
		xs[qi] = make([]fixed.Code, in)
		for i := range xs[qi] {
			xs[qi][i] = fixed.Code((255 - i - qi*5) % 256)
		}
	}
	adder := NewCrossCycleAdder(1)
	adder.Gain = e.Core.FullScaleLanes
	out := make([]fixed.Acc, q)
	var stats LayerStats
	e.runDotBatch(w, xs, adder, out, &stats) // warm-up: grows batch scratch
	if n := testing.AllocsPerRun(100, func() {
		e.runDotBatch(w, xs, adder, out, &stats)
	}); n != 0 {
		t.Fatalf("runDotBatch allocates %v times per call in steady state, want 0", n)
	}
}

// TestRunDotBatchScratchRegrowth: a wider/deeper batch after a narrow one
// must regrow the batch scratch and still match a fresh engine (the scratch
// is pure working storage, never carried state).
func TestRunDotBatchScratchRegrowth(t *testing.T) {
	weights, bias, xs := batchLayer(4, 96, 6)

	e1 := newTestEngine(t, 2, false)
	narrowW, _, narrowXs := batchLayer(2, 8, 2)
	e1.ExecuteFCBatch(narrowW, narrowXs, ActIdentity, 0) // scratch sized small
	got := e1.ExecuteFCBiasBatch(weights, bias, xs, ActReLU, 2)

	e2 := newTestEngine(t, 2, false)
	want := e2.ExecuteFCBiasBatch(weights, bias, xs, ActReLU, 2)
	for qi := range want.PerQuery {
		if !reflect.DeepEqual(got.PerQuery[qi].Raw, want.PerQuery[qi].Raw) {
			t.Fatalf("regrown scratch changed query %d: %v != %v",
				qi, got.PerQuery[qi].Raw, want.PerQuery[qi].Raw)
		}
	}
}
