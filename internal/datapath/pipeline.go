package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/converter"
	"github.com/lightning-smartnic/lightning/internal/countaction"
	"github.com/lightning-smartnic/lightning/internal/fixed"
	"github.com/lightning-smartnic/lightning/internal/photonic"
)

// Activation selects the digital non-linear function applied to a layer's
// dot-product results.
type Activation int

// Supported activations and their pipeline cycle costs (§5.3 footnote 3).
const (
	ActIdentity Activation = iota
	ActReLU
	ActSoftmax
)

// Cycles returns the activation's pipeline latency in digital clock cycles.
func (a Activation) Cycles() int {
	switch a {
	case ActReLU:
		return CyclesReLU
	case ActSoftmax:
		return CyclesSoftmax
	default:
		return 0
	}
}

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActSoftmax:
		return "softmax"
	default:
		return "identity"
	}
}

// LayerStats is the cycle accounting for one executed layer, split the way
// Fig 15 splits latency: compute (photonic steps + adders + non-linearity)
// versus datapath (preambles, ADC framing, configuration).
type LayerStats struct {
	// PhotonicSteps is the number of analog time steps performed.
	PhotonicSteps uint64
	// ComputeCycles is the digital-clock cost of compute stages.
	ComputeCycles uint64
	// DatapathCycles is the digital-clock cost of datapath overheads.
	DatapathCycles uint64
	// SaturatedSamples counts ADC samples that clipped at the rails.
	SaturatedSamples uint64
	// PreambleMisses counts vectors whose preamble was not detected (the
	// exception path that punts to the control plane).
	PreambleMisses uint64
}

// Add accumulates another layer's stats.
func (s *LayerStats) Add(o LayerStats) {
	s.PhotonicSteps += o.PhotonicSteps
	s.ComputeCycles += o.ComputeCycles
	s.DatapathCycles += o.DatapathCycles
	s.SaturatedSamples += o.SaturatedSamples
	s.PreambleMisses += o.PreambleMisses
}

// TotalCycles is the layer's end-to-end digital-clock cost.
func (s LayerStats) TotalCycles() uint64 { return s.ComputeCycles + s.DatapathCycles }

// Seconds converts total cycles to wall time at the prototype clock.
func (s LayerStats) Seconds() float64 {
	return float64(s.TotalCycles()) / converter.DigitalClockHz
}

// Engine executes DNN layers on a photonic core through the full prototype
// datapath: operand streams with preambles through DACs, analog dot-product
// steps, phase-unknown ADC readout, count-action preamble detection,
// cross-cycle sign reassembly, the intra-cycle adder tree, and the
// non-linear unit. It is the software twin of Fig 13's datapath.
type Engine struct {
	Core     *photonic.Core
	ADC      *converter.ADC
	Preamble PreambleConfig
	Regs     *countaction.RegisterFile

	detector *Detector
	scratch  engineScratch
}

// NewEngine builds an engine over the given core. seed drives the ADC's
// readout phase and idle noise. The engine configures the core's detector
// full scale to span all wavelength lanes so that multi-wavelength
// accumulations never clip the ADC; the cross-cycle adder re-applies the
// known gain digitally.
func NewEngine(core *photonic.Core, seed uint64) *Engine {
	core.FullScaleLanes = core.NumLanes()
	return &Engine{
		Core:     core,
		ADC:      converter.NewADC(seed),
		Preamble: PrototypePreamble(),
		Regs:     countaction.NewRegisterFile(64),
		detector: NewDetector(PrototypePreamble()),
	}
}

// runDot computes one output neuron's dot product W·x through the analog
// and digital pipeline. Weights are sign/magnitude; activations are
// non-negative codes. Elements are grouped by weight sign so that every
// photonic accumulation step carries a single sign, which the cross-cycle
// adder-subtractor applies when reassembling (§5.3, Appendix C).
//
// All working storage comes from the engine's scratch: after ensure has
// grown the buffers to the layer geometry (and baked the preamble prefix
// once), the steady state performs zero heap allocations per neuron. The
// body therefore sticks to indexed writes, reslices, and copies — growth
// lives in the cold helpers.
//
//lint:hotpath
func (e *Engine) runDot(w []fixed.Signed, x []fixed.Code, adder *CrossCycleAdder, stats *LayerStats) fixed.Acc {
	if len(w) != len(x) {
		panic(fmt.Sprintf("datapath: weight row length %d != activation length %d", len(w), len(x)))
	}
	s := &e.scratch
	s.ensure(e.Preamble, len(w))
	np, nn := 0, 0
	for i, wi := range w {
		if wi.Mag == 0 || x[i] == 0 {
			continue // zero products need no analog step (sparse skip)
		}
		if wi.Neg {
			s.negW[nn], s.negX[nn] = wi.Mag, x[i]
			nn++
		} else {
			s.posW[np], s.posX[np] = wi.Mag, x[i]
			np++
		}
	}

	// Run the two same-sign groups through the photonic core (positive
	// first, as the streamer orders them) and collect the analog partials.
	s.posParts = e.Core.DotPartialsInto(s.posParts, s.posW[:np], s.posX[:np])
	s.negParts = e.Core.DotPartialsInto(s.negParts, s.negW[:nn], s.negX[:nn])
	parts := len(s.posParts) + len(s.negParts)
	stats.PhotonicSteps += uint64(parts)
	if parts == 0 {
		return 0
	}

	// Sign controls pair one-to-one with the concatenated partials.
	s.negs = s.negs[:parts]
	for i := range s.negs {
		s.negs[i] = i >= len(s.posParts)
	}

	// ADC readout at an arbitrary phase, preceded by the preamble the
	// datapath prepended to the vector (baked into the scratch prefix).
	s.burst = s.burst[:len(s.pre)+parts]
	copy(s.burst, s.pre)
	copy(s.burst[len(s.pre):], s.posParts)
	copy(s.burst[len(s.pre)+len(s.posParts):], s.negParts)
	phase := e.ADC.RandomPhase()
	s.frames = e.ADC.ReadoutFramesInto(s.frames[:0], s.burst, phase)
	stats.DatapathCycles += uint64(len(s.frames))

	// Count-action preamble detection locates the meaningful samples.
	e.detector.Reset()
	detPhase, _, ok := e.detector.Detect(s.frames)
	if !ok {
		stats.PreambleMisses++
		detPhase = phase // exception path: fall back to known phase
	}
	s.payload = e.detector.ExtractPayloadInto(s.payload[:0], s.frames, detPhase, parts)
	payload := s.payload

	// Cross-cycle sign reassembly and the intra-cycle adder tree.
	adder.SetPartialsPerDot(len(payload))
	for i := 0; i < len(payload); i += Lanes {
		end := i + Lanes
		if end > len(payload) {
			end = len(payload)
		}
		for _, v := range payload[i:end] {
			if v == fixed.MaxCode {
				stats.SaturatedSamples++
			}
		}
		adder.Accumulate(payload[i:end], s.negs[i:end])
		stats.ComputeCycles++
	}
	lanes := adder.Drain()
	sum, treeCycles := TreeSumInPlace(lanes[:])
	stats.ComputeCycles += uint64(treeCycles)
	return sum
}

// FCResult is the output of one fully-connected layer execution.
type FCResult struct {
	// Raw holds the 16-bit accumulator outputs after the activation.
	Raw []fixed.Acc
	// Quantized holds the 8-bit activation codes after requantization,
	// ready to stream into the next layer.
	Quantized []fixed.Code
	// Probs holds softmax probability codes when the activation was
	// softmax, else nil.
	Probs []fixed.Code
	Stats LayerStats
}

// ExecuteFC runs a fully-connected layer without bias; see ExecuteFCBias.
func (e *Engine) ExecuteFC(weights [][]fixed.Signed, x []fixed.Code, act Activation, requantShift uint) FCResult {
	return e.ExecuteFCBias(weights, nil, x, act, requantShift)
}

// ExecuteFCBias runs a fully-connected layer:
// out[j] = act(Σ_i W[j][i]·x[i] + bias[j]). The bias (in raw accumulator
// units) is added digitally after the intra-cycle adder tree. requantShift
// is the per-layer right-shift mapping 16-bit accumulators back onto 8-bit
// activation codes for the next layer (computed offline by the DAG loader
// together with the weight scales).
func (e *Engine) ExecuteFCBias(weights [][]fixed.Signed, bias []fixed.Acc, x []fixed.Code, act Activation, requantShift uint) FCResult {
	var res FCResult
	adder := NewCrossCycleAdder(1)
	adder.Gain = e.Core.FullScaleLanes
	res.Raw = make([]fixed.Acc, len(weights))
	// Fixed per-layer datapath overhead: DAG configuration register writes
	// and stream setup (the 193 ns/layer of §9 at 253.44 MHz ≈ 49 cycles).
	res.Stats.DatapathCycles += PerLayerOverheadCycles
	for j, row := range weights {
		res.Raw[j] = e.runDot(row, x, adder, &res.Stats)
		if j < len(bias) {
			res.Raw[j] = fixed.SatAdd(res.Raw[j], bias[j])
		}
	}
	switch act {
	case ActReLU:
		res.Raw = ReLUVec(res.Raw)
		res.Stats.ComputeCycles += CyclesReLU
	case ActSoftmax:
		res.Probs = Softmax(res.Raw)
		res.Stats.ComputeCycles += CyclesSoftmax
	}
	res.Quantized = RequantizeVec(res.Raw, requantShift)
	return res
}

// PerLayerOverheadCycles is the fixed datapath cost per layer measured from
// the prototype: 193 ns at the 253.44 MHz clock (§9, Table 6 footnote 4:
// "this datapath latency covers the time it takes to perform
// Lightning-specific functions like DACs, ADCs, and count-action modules").
const PerLayerOverheadCycles = 49

// Requantize maps a 16-bit accumulator onto an 8-bit activation code by an
// arithmetic right shift with saturation. Negative values clamp to zero:
// activations entering the photonic domain must be non-negative light
// intensities, and every supported activation (ReLU, softmax) is
// non-negative anyway.
func Requantize(x fixed.Acc, shift uint) fixed.Code {
	if x <= 0 {
		return 0
	}
	v := int32(x) >> shift
	if v > fixed.MaxCode {
		return fixed.MaxCode
	}
	return fixed.Code(v)
}

// RequantizeVec applies Requantize element-wise.
func RequantizeVec(xs []fixed.Acc, shift uint) []fixed.Code {
	out := make([]fixed.Code, len(xs))
	for i, x := range xs {
		out[i] = Requantize(x, shift)
	}
	return out
}
