package datapath

import (
	"math"

	"github.com/lightning-smartnic/lightning/internal/countaction"
	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Non-linear function units of §5.3. The computation DAG of a DNN layer
// needs more than photonic dot products; ReLU, softmax and friends run in
// the digital domain, pipelined so they only add a few cycles to the last
// dot product of a layer. Cycle costs follow footnote 3: "Our ReLU and
// softmax implementations take one and eight clock cycles, respectively."
const (
	// CyclesReLU is the ReLU unit's pipeline latency.
	CyclesReLU = 1
	// CyclesSoftmax is the softmax unit's pipeline latency.
	CyclesSoftmax = 8
)

// ReLU clamps a 16-bit accumulator word at zero (one clock cycle).
func ReLU(x fixed.Acc) fixed.Acc {
	if x < 0 {
		return 0
	}
	return x
}

// ReLUVec applies ReLU element-wise.
func ReLUVec(xs []fixed.Acc) []fixed.Acc {
	out := make([]fixed.Acc, len(xs))
	for i, x := range xs {
		out[i] = ReLU(x)
	}
	return out
}

// expLUT is the fixed-point exponential lookup table the softmax unit uses:
// entry i holds round(exp(-i/16) * 2^14), covering inputs 0..127 in 1/16
// steps. Hardware softmax subtracts the max first, so only non-positive
// arguments occur.
var expLUT = func() [128]int32 {
	var t [128]int32
	for i := range t {
		t[i] = int32(math.Round(math.Exp(-float64(i)/16.0) * 16384))
	}
	return t
}()

// expFixed returns exp(-d/16) in Q2.14 for a non-negative difference d
// (saturating at the table's end, where the true value is ≈0).
func expFixed(d int32) int32 {
	if d < 0 {
		d = 0
	}
	if d >= int32(len(expLUT)) {
		return 0
	}
	return expLUT[d]
}

// Softmax computes a fixed-point softmax over 16-bit accumulator inputs,
// returning 8-bit probability codes that sum to ≈255. The implementation
// mirrors a hardware unit: find max (adder-tree pass), subtract, exponentiate
// by LUT, normalize by one division — eight pipeline cycles in total.
//
// Inputs are interpreted on a 1/16-per-LSB logit scale, so an input range of
// ±127 spans ±8 natural-log units, enough for 8-bit probability resolution.
func Softmax(xs []fixed.Acc) []fixed.Code {
	if len(xs) == 0 {
		return nil
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	exps := make([]int64, len(xs))
	var total int64
	for i, x := range xs {
		e := int64(expFixed(int32(max) - int32(x)))
		exps[i] = e
		total += e
	}
	out := make([]fixed.Code, len(xs))
	if total == 0 {
		return out
	}
	for i, e := range exps {
		out[i] = fixed.Code((e*255 + total/2) / total)
	}
	return out
}

// Argmax returns the index of the largest accumulator value — the
// classification decision the result-generation stage packs into the
// response packet. Ties resolve to the lowest index.
func Argmax(xs []fixed.Acc) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// NonLinearUnit wraps a non-linear function with its pipeline cost and a
// count-action trigger: the unit fires once per completed vector dot product
// ("Lightning's count-action abstraction triggers the computation of
// non-linear modules based on the count of the number of elements in the
// vector dot product").
type NonLinearUnit struct {
	Module *countaction.Module

	rule   *countaction.Rule
	cycles int
	buf    []fixed.Acc
	outs   [][]fixed.Acc
	apply  func([]fixed.Acc) []fixed.Acc
}

// NewReLUUnit builds a ReLU unit that releases its buffered vector every
// vecLen accumulated elements.
func NewReLUUnit(vecLen int) *NonLinearUnit {
	return newNonLinearUnit("relu", vecLen, CyclesReLU, ReLUVec)
}

// NewIdentityUnit builds a pass-through unit (layers without activation).
func NewIdentityUnit(vecLen int) *NonLinearUnit {
	return newNonLinearUnit("identity", vecLen, 0, func(xs []fixed.Acc) []fixed.Acc { return xs })
}

func newNonLinearUnit(name string, vecLen, cycles int, apply func([]fixed.Acc) []fixed.Acc) *NonLinearUnit {
	u := &NonLinearUnit{
		Module: countaction.NewModule("nonlinear_" + name),
		cycles: cycles,
		apply:  apply,
	}
	u.rule = u.Module.Attach(countaction.New("element-count", countaction.Value(vecLen), func() {
		v := make([]fixed.Acc, len(u.buf))
		copy(v, u.buf)
		u.outs = append(u.outs, u.apply(v))
		u.buf = u.buf[:0]
	}))
	return u
}

// Cycles returns the unit's pipeline latency per activation vector.
func (u *NonLinearUnit) Cycles() int { return u.cycles }

// SetVectorLength retargets the release threshold at runtime.
func (u *NonLinearUnit) SetVectorLength(n int) { u.rule.SetTarget(countaction.Value(n)) }

// Offer feeds one completed dot-product result; when the configured vector
// length has accumulated, the activation function runs and the vector
// becomes available via Take.
func (u *NonLinearUnit) Offer(x fixed.Acc) {
	u.buf = append(u.buf, x)
	u.rule.Add(1)
}

// Take returns the oldest completed activation vector, or nil.
func (u *NonLinearUnit) Take() []fixed.Acc {
	if len(u.outs) == 0 {
		return nil
	}
	v := u.outs[0]
	u.outs = u.outs[1:]
	return v
}

// Reset clears buffered state.
func (u *NonLinearUnit) Reset() {
	u.buf = u.buf[:0]
	u.outs = nil
	u.Module.Reset()
}
