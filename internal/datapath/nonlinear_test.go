package datapath

import (
	"math"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

func TestReLU(t *testing.T) {
	if ReLU(-5) != 0 || ReLU(0) != 0 || ReLU(7) != 7 {
		t.Error("ReLU wrong")
	}
	v := ReLUVec([]fixed.Acc{-1, 2, -3})
	if v[0] != 0 || v[1] != 2 || v[2] != 0 {
		t.Errorf("ReLUVec = %v", v)
	}
}

func TestSoftmaxSumsToFullScale(t *testing.T) {
	probs := Softmax([]fixed.Acc{10, 20, 30, 5})
	var sum int
	for _, p := range probs {
		sum += int(p)
	}
	if sum < 252 || sum > 258 {
		t.Errorf("softmax sum = %d, want ≈255", sum)
	}
}

func TestSoftmaxOrderPreserved(t *testing.T) {
	in := []fixed.Acc{3, 90, -20, 45}
	probs := Softmax(in)
	if !(probs[1] > probs[3] && probs[3] > probs[0] && probs[0] >= probs[2]) {
		t.Errorf("softmax order broken: %v", probs)
	}
}

func TestSoftmaxMatchesFloat(t *testing.T) {
	// The fixed-point unit must track a float softmax (inputs on the
	// 1/16-per-LSB logit scale) within a few codes.
	in := []fixed.Acc{0, 16, 32, 8} // logits 0, 1, 2, 0.5
	probs := Softmax(in)
	logits := []float64{0, 1, 2, 0.5}
	var denom float64
	for _, l := range logits {
		denom += math.Exp(l)
	}
	for i, l := range logits {
		want := math.Exp(l) / denom * 255
		if math.Abs(float64(probs[i])-want) > 3 {
			t.Errorf("prob[%d] = %d, want ≈%.1f", i, probs[i], want)
		}
	}
}

func TestSoftmaxEdgeCases(t *testing.T) {
	if got := Softmax(nil); got != nil {
		t.Errorf("Softmax(nil) = %v", got)
	}
	// A single input gets the full probability mass.
	if got := Softmax([]fixed.Acc{-100}); got[0] != 255 {
		t.Errorf("singleton softmax = %v", got)
	}
	// Extreme spread: winner takes all.
	got := Softmax([]fixed.Acc{0, 10000})
	if got[1] != 255 || got[0] != 0 {
		t.Errorf("extreme softmax = %v", got)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]fixed.Acc{1, 5, 3}) != 1 {
		t.Error("Argmax wrong")
	}
	if Argmax([]fixed.Acc{7, 7}) != 0 {
		t.Error("Argmax tie should pick lowest index")
	}
}

func TestNonLinearUnitReleasesVectors(t *testing.T) {
	u := NewReLUUnit(3)
	u.Offer(-1)
	u.Offer(2)
	if v := u.Take(); v != nil {
		t.Fatal("released before vector complete")
	}
	u.Offer(-3)
	v := u.Take()
	if v == nil {
		t.Fatal("no vector after 3 elements")
	}
	if v[0] != 0 || v[1] != 2 || v[2] != 0 {
		t.Errorf("activated vector = %v", v)
	}
	if u.Cycles() != CyclesReLU {
		t.Errorf("Cycles = %d", u.Cycles())
	}
}

func TestNonLinearUnitQueueing(t *testing.T) {
	u := NewIdentityUnit(2)
	for i := 0; i < 6; i++ {
		u.Offer(fixed.Acc(i))
	}
	first := u.Take()
	second := u.Take()
	third := u.Take()
	if first[1] != 1 || second[0] != 2 || third[1] != 5 {
		t.Errorf("queued vectors = %v %v %v", first, second, third)
	}
	if u.Take() != nil {
		t.Error("extra vector")
	}
}

func TestNonLinearUnitRetargetAndReset(t *testing.T) {
	u := NewReLUUnit(5)
	u.SetVectorLength(1)
	u.Offer(9)
	if v := u.Take(); v == nil || v[0] != 9 {
		t.Errorf("retargeted unit = %v", v)
	}
	u.Offer(1)
	u.Reset()
	u.SetVectorLength(1)
	u.Offer(2)
	if v := u.Take(); v == nil || v[0] != 2 {
		t.Errorf("post-reset vector = %v", v)
	}
}

func TestActivationMeta(t *testing.T) {
	if ActReLU.Cycles() != 1 || ActSoftmax.Cycles() != 8 || ActIdentity.Cycles() != 0 {
		t.Error("activation cycles wrong")
	}
	if ActReLU.String() != "relu" || ActSoftmax.String() != "softmax" || ActIdentity.String() != "identity" {
		t.Error("activation names wrong")
	}
}

func TestRequantize(t *testing.T) {
	if Requantize(-5, 0) != 0 {
		t.Error("negative should clamp to 0")
	}
	if Requantize(1024, 2) != 255 {
		t.Error("overflow should saturate at 255")
	}
	if Requantize(1000, 2) != 250 {
		t.Errorf("Requantize(1000,2) = %d", Requantize(1000, 2))
	}
	v := RequantizeVec([]fixed.Acc{-1, 512, 100}, 1)
	if v[0] != 0 || v[1] != 255 || v[2] != 50 {
		t.Errorf("RequantizeVec = %v", v)
	}
}
