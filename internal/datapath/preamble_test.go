package datapath

import (
	"testing"

	"github.com/lightning-smartnic/lightning/internal/converter"
	"github.com/lightning-smartnic/lightning/internal/fixed"
)

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern("HHHHHHHHLLLLLLLL")
	if err != nil {
		t.Fatal(err)
	}
	if p != PrototypePattern() {
		t.Errorf("parsed %v != prototype", p)
	}
	if p.String() != "HHHHHHHHLLLLLLLL" {
		t.Errorf("String = %q", p.String())
	}
	if _, err := ParsePattern("HHLL"); err == nil {
		t.Error("short pattern accepted")
	}
	if _, err := ParsePattern("HHHHHHHHLLLLLLLX"); err == nil {
		t.Error("bad symbol accepted")
	}
}

func TestPatternCodes(t *testing.T) {
	c := PrototypePattern().Codes()
	if c[0] != HighLevel || c[15] != LowLevel {
		t.Errorf("codes = %v", c)
	}
}

func TestShiftedRotation(t *testing.T) {
	p := PrototypePattern()
	s := p.Shifted(6)
	// Position j carries pattern position (j-6) mod 16: positions 0–5 come
	// from pattern tail (L), 6–13 from pattern head (H).
	want := "LLLLLLHHHHHHHHLL"
	if s.String() != want {
		t.Errorf("Shifted(6) = %v, want %v", s, want)
	}
	if p.Shifted(0) != p {
		t.Error("Shifted(0) changed pattern")
	}
	if p.Shifted(16) != p {
		t.Error("Shifted(16) != identity")
	}
}

func TestMatchFrameThresholds(t *testing.T) {
	p := PrototypePattern()
	var f converter.Frame
	for i := 0; i < 8; i++ {
		f[i] = 250 // noisy H
	}
	for i := 8; i < 16; i++ {
		f[i] = 10 // noisy L
	}
	if !p.MatchFrame(f) {
		t.Error("noisy pattern did not match")
	}
	f[3] = 100 // mid-range: neither H nor L
	if p.MatchFrame(f) {
		t.Error("corrupted pattern matched")
	}
}

func TestPrependLayout(t *testing.T) {
	cfg := PrototypePreamble()
	payload := []fixed.Code{9, 8, 7}
	out := cfg.Prepend(payload)
	if len(out) != cfg.Samples()+3 {
		t.Fatalf("len = %d, want %d", len(out), cfg.Samples()+3)
	}
	if out[0] != HighLevel || out[8] != LowLevel {
		t.Error("preamble head wrong")
	}
	if out[cfg.Samples()] != 9 {
		t.Error("payload not after preamble")
	}
}

func TestDetectorAllPhases(t *testing.T) {
	// Fig 9: for every readout phase, detection returns the exact position
	// of the first meaningful sample.
	cfg := PrototypePreamble()
	payload := make([]fixed.Code, 37)
	for i := range payload {
		payload[i] = fixed.Code(50 + i*3)
	}
	burst := cfg.Prepend(payload)
	analog := make([]float64, len(burst))
	for i, c := range burst {
		analog[i] = float64(c)
	}
	for phase := 0; phase < converter.SamplesPerCycle; phase++ {
		adc := converter.NewADC(uint64(phase + 1))
		frames := adc.ReadoutFrames(analog, phase)
		d := NewDetector(cfg)
		got, frameIdx, ok := d.Detect(frames)
		if !ok {
			t.Fatalf("phase %d: not detected", phase)
		}
		if got != phase {
			t.Fatalf("phase %d: detected %d", phase, got)
		}
		if frameIdx >= cfg.Repetitions+1 {
			t.Errorf("phase %d: detection too late (frame %d)", phase, frameIdx)
		}
		// Extraction must recover the exact payload.
		ext := d.ExtractPayload(frames, got, len(payload))
		if len(ext) != len(payload) {
			t.Fatalf("phase %d: extracted %d samples, want %d", phase, len(ext), len(payload))
		}
		for i := range payload {
			if ext[i] != payload[i] {
				t.Fatalf("phase %d: payload[%d] = %d, want %d", phase, i, ext[i], payload[i])
			}
		}
	}
}

func TestDetectorRejectsPureNoise(t *testing.T) {
	adc := converter.NewADC(5)
	d := NewDetector(PrototypePreamble())
	// Noise-only frames (empty burst → all idle noise).
	frames := adc.ReadoutFrames(make([]float64, 0), 0)
	for i := 0; i < 100; i++ {
		frames = append(frames, adc.ReadoutFrames(make([]float64, 0), 0)...)
	}
	if _, _, ok := d.Detect(frames); ok {
		t.Error("detector fired on pure noise")
	}
}

func TestDetectorCountTargets(t *testing.T) {
	// Listing 2: the 0-shift rule targets P, every other shift P−1.
	d := NewDetector(PrototypePreamble())
	snap := d.Module.Snapshot()
	for _, s := range snap {
		want := int64(9)
		if s.Name == "shift-00" {
			want = 10
		}
		if s.Target != want {
			t.Errorf("%s target = %d, want %d", s.Name, s.Target, want)
		}
	}
}

func TestDetectorReset(t *testing.T) {
	cfg := PrototypePreamble()
	adc := converter.NewADC(2)
	burst := cfg.Prepend([]fixed.Code{100})
	analog := make([]float64, len(burst))
	for i, c := range burst {
		analog[i] = float64(c)
	}
	d := NewDetector(cfg)
	if _, _, ok := d.Detect(adc.ReadoutFrames(analog, 3)); !ok {
		t.Fatal("first detection failed")
	}
	d.Reset()
	if phase, ok := d.Offer(converter.Frame{}); ok || phase != -1 {
		t.Error("Reset did not rearm detector")
	}
	// And it detects again at a different phase.
	if got, _, ok := d.Detect(adc.ReadoutFrames(analog, 11)); !ok || got != 11 {
		t.Errorf("second detection: phase=%d ok=%v", got, ok)
	}
}

func TestNewDetectorRequiresRepetitions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-repetition preamble accepted")
		}
	}()
	NewDetector(PreambleConfig{Pattern: PrototypePattern(), Repetitions: 1})
}

func TestExtractPayloadTruncated(t *testing.T) {
	d := NewDetector(PrototypePreamble())
	// Burst shorter than the preamble: nothing to extract.
	frames := []converter.Frame{{}}
	if got := d.ExtractPayload(frames, 0, 5); got != nil {
		t.Errorf("extracted %v from short burst", got)
	}
}
