package datapath

import (
	"testing"
	"testing/quick"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

func TestCrossCycleAccumulateSigns(t *testing.T) {
	a := NewCrossCycleAdder(4)
	done := a.Accumulate([]fixed.Code{10, 20}, []bool{false, true})
	if done {
		t.Fatal("fired early")
	}
	done = a.Accumulate([]fixed.Code{5, 1}, []bool{false, false})
	if !done {
		t.Fatal("did not fire at 4 partials")
	}
	lanes := a.Drain()
	// Lane 0 accumulated +10 then +5 = 15; lane 1 −20 then +1 = −19.
	if lanes[0] != 15 || lanes[1] != -19 {
		t.Errorf("lanes = %d, %d", lanes[0], lanes[1])
	}
	if a.Ready() {
		t.Error("Ready after Drain")
	}
}

func TestCrossCycleLaneWraps(t *testing.T) {
	// More than Lanes samples round-robin back onto lane 0.
	a := NewCrossCycleAdder(Lanes + 1)
	samples := make([]fixed.Code, Lanes)
	negs := make([]bool, Lanes)
	for i := range samples {
		samples[i] = 1
	}
	a.Accumulate(samples, negs)
	a.Accumulate([]fixed.Code{100}, []bool{false})
	lanes := a.Drain()
	if lanes[0] != 101 {
		t.Errorf("lane 0 = %d, want 101", lanes[0])
	}
}

func TestCrossCyclePanics(t *testing.T) {
	a := NewCrossCycleAdder(1)
	for _, f := range []func(){
		func() { a.Accumulate(make([]fixed.Code, Lanes+1), make([]bool, Lanes+1)) },
		func() { a.Accumulate([]fixed.Code{1}, []bool{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Accumulate input did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCrossCycleRetarget(t *testing.T) {
	a := NewCrossCycleAdder(100)
	a.SetPartialsPerDot(2)
	a.Accumulate([]fixed.Code{1}, []bool{false})
	if !a.Accumulate([]fixed.Code{1}, []bool{false}) {
		t.Error("retargeted rule did not fire at 2")
	}
}

func TestCrossCycleReset(t *testing.T) {
	a := NewCrossCycleAdder(10)
	a.Accumulate([]fixed.Code{50}, []bool{false})
	a.Reset()
	if l := a.Drain(); l[0] != 0 {
		t.Errorf("lane after Reset = %d", l[0])
	}
}

func TestTreeSumCorrectAndLogDepth(t *testing.T) {
	lanes := make([]fixed.Acc, 16)
	var want fixed.Acc
	for i := range lanes {
		lanes[i] = fixed.Acc(i*3 - 8)
		want += lanes[i]
	}
	sum, cycles := TreeSum(lanes)
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if cycles != 4 { // log2(16)
		t.Errorf("cycles = %d, want 4", cycles)
	}
}

func TestTreeSumEdgeCases(t *testing.T) {
	if s, c := TreeSum(nil); s != 0 || c != 0 {
		t.Errorf("empty tree: %d, %d", s, c)
	}
	if s, c := TreeSum([]fixed.Acc{7}); s != 7 || c != 0 {
		t.Errorf("singleton tree: %d, %d", s, c)
	}
	if s, c := TreeSum([]fixed.Acc{1, 2, 3}); s != 6 || c != 2 {
		t.Errorf("odd tree: %d, %d", s, c)
	}
}

func TestTreeCycles(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 16: 4, 17: 5}
	for k, want := range cases {
		if got := TreeCycles(k); got != want {
			t.Errorf("TreeCycles(%d) = %d, want %d", k, got, want)
		}
	}
}

// Property: for sign-free inputs that cannot saturate, tree sum equals the
// linear sum.
func TestTreeSumMatchesLinear(t *testing.T) {
	f := func(raw []int16) bool {
		lanes := make([]fixed.Acc, len(raw))
		var want int64
		for i, r := range raw {
			lanes[i] = fixed.Acc(r % 100)
			want += int64(lanes[i])
		}
		if want > fixed.AccMax || want < fixed.AccMin {
			return true // saturation exempt
		}
		sum, _ := TreeSum(lanes)
		return int64(sum) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
