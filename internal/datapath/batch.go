package datapath

import (
	"fmt"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

// Cross-query batching through the engine: where runDot pushes one query's
// dot product through the analog+digital pipeline, runDotBatch pushes one
// output neuron's dot for Q queries through a single shared burst — the
// matrix-matrix pass the count-action abstraction makes natural (counts
// just grow by the batch dimension). The per-batch amortizations, each of
// which the serial path pays once per query:
//
//   - one preamble prefix (and so one preamble detection) per neuron per
//     batch instead of per neuron per query;
//   - one LUT-validity sweep per photonic pass (DotPartialsBatchInto)
//     instead of two per query;
//   - one ADC readout covering every query's partials;
//   - per layer, one count-action reconfiguration and one DRAM weight
//     stream (see dagloader.ServeBatch).
//
// Equivalence contract: on an ideal (noiseless) channel a batched pass is
// bit-identical to serving the queries serially — the analog steps per
// query are exactly the serial ones, payload samples quantize identically,
// and preamble detection recovers them exactly — which the differential
// suite enforces. With a noise model the batch draws the shared-burst noise
// stream in a different order than Q serial bursts would, as physically
// distinct schedules must; batch size 1 stays in rng lockstep with runDot
// (same burst, same draws), so an idle batching server remains byte-
// identical to a serial one.

// runDotBatch computes one output neuron's dot product W·x_q for every
// query q in the batch, writing the reassembled accumulator values into
// out[0:len(xs)]. Weights are sign/magnitude; each query's elements are
// grouped by weight sign exactly as runDot groups them, every group keeps
// its own analog tail step, and the cross-cycle adder reassembles each
// query's segment of the shared payload separately, so per-query results
// carry no cross-query analog coupling.
//
// All working storage comes from the engine's batch scratch; after ensure
// the steady state performs zero heap allocations (see the AllocsPerRun
// guard). Not reentrant; the engine's single-owner contract applies.
//
//lint:hotpath
func (e *Engine) runDotBatch(w []fixed.Signed, xs [][]fixed.Code, adder *CrossCycleAdder, out []fixed.Acc, stats *LayerStats) {
	q := len(xs)
	if len(out) < q {
		panic(fmt.Sprintf("datapath: batch out length %d < %d queries", len(out), q))
	}
	s := &e.scratch
	s.ensureBatch(e.Preamble, len(w), q)
	lanes := e.Core.NumLanes()
	s.bounds = s.bounds[:2*q+1]
	s.qPos, s.qParts = s.qPos[:q], s.qParts[:q]
	s.bounds[0] = 0
	bi, g, total := 0, 1, 0
	for qi := 0; qi < q; qi++ {
		x := xs[qi]
		if len(x) != len(w) {
			panic(fmt.Sprintf("datapath: weight row length %d != activation length %d", len(w), len(x)))
		}
		np, nn := 0, 0
		for i, wi := range w {
			if wi.Mag == 0 || x[i] == 0 {
				continue // zero products need no analog step (sparse skip)
			}
			if wi.Neg {
				s.negW[nn], s.negX[nn] = wi.Mag, x[i]
				nn++
			} else {
				s.posW[np], s.posX[np] = wi.Mag, x[i]
				np++
			}
		}
		copy(s.bW[bi:], s.posW[:np])
		copy(s.bX[bi:], s.posX[:np])
		bi += np
		s.bounds[g] = bi
		g++
		copy(s.bW[bi:], s.negW[:nn])
		copy(s.bX[bi:], s.negX[:nn])
		bi += nn
		s.bounds[g] = bi
		g++
		posSteps := (np + lanes - 1) / lanes
		negSteps := (nn + lanes - 1) / lanes
		s.qPos[qi], s.qParts[qi] = posSteps, posSteps+negSteps
		total += posSteps + negSteps
	}
	stats.PhotonicSteps += uint64(total)
	if total == 0 {
		for qi := 0; qi < q; qi++ {
			out[qi] = 0
		}
		return
	}

	// One batched photonic pass: a single LUT-validity decision covers
	// every query's sign groups.
	s.bParts = e.Core.DotPartialsBatchInto(s.bParts, s.bW[:bi], s.bX[:bi], s.bounds[:g])

	// Sign controls pair one-to-one with the concatenated partials.
	s.negs = s.negs[:total]
	p := 0
	for qi := 0; qi < q; qi++ {
		for k := 0; k < s.qParts[qi]; k++ {
			s.negs[p] = k >= s.qPos[qi]
			p++
		}
	}

	// One shared burst: the preamble prefix is paid once for the whole
	// batch, and one ADC readout at one arbitrary phase digitizes every
	// query's partials.
	s.burst = s.burst[:len(s.pre)+total]
	copy(s.burst, s.pre)
	copy(s.burst[len(s.pre):], s.bParts)
	phase := e.ADC.RandomPhase()
	s.frames = e.ADC.ReadoutFramesInto(s.frames[:0], s.burst, phase)
	stats.DatapathCycles += uint64(len(s.frames))

	// One count-action preamble detection locates every query's samples.
	e.detector.Reset()
	detPhase, _, ok := e.detector.Detect(s.frames)
	if !ok {
		stats.PreambleMisses++
		detPhase = phase // exception path: fall back to known phase
	}
	s.payload = e.detector.ExtractPayloadInto(s.payload[:0], s.frames, detPhase, total)

	// Per-query reassembly: slice the shared payload back apart and run
	// each query's segment through the cross-cycle adder and the tree.
	start := 0
	for qi := 0; qi < q; qi++ {
		parts := s.qParts[qi]
		if parts == 0 {
			out[qi] = 0
			continue
		}
		lo, hi := start, start+parts
		start = hi
		if lo > len(s.payload) {
			lo = len(s.payload)
		}
		if hi > len(s.payload) {
			hi = len(s.payload)
		}
		seg, negSeg := s.payload[lo:hi], s.negs[lo:hi]
		adder.SetPartialsPerDot(len(seg))
		for i := 0; i < len(seg); i += Lanes {
			end := i + Lanes
			if end > len(seg) {
				end = len(seg)
			}
			for _, v := range seg[i:end] {
				if v == fixed.MaxCode {
					stats.SaturatedSamples++
				}
			}
			adder.Accumulate(seg[i:end], negSeg[i:end])
			stats.ComputeCycles++
		}
		drained := adder.Drain()
		sum, treeCycles := TreeSumInPlace(drained[:])
		stats.ComputeCycles += uint64(treeCycles)
		out[qi] = sum
	}
}

// BatchFCResult is the output of one fully-connected layer executed for a
// batch of queries in a single matrix pass.
type BatchFCResult struct {
	// PerQuery holds each query's layer output in batch order. The
	// per-query Stats fields are zero: cycle accounting for a batched
	// pass is inherently shared, so it lives in Stats below.
	PerQuery []FCResult
	// Stats is the whole-batch accounting for this layer pass. Shared
	// overheads (the per-layer reconfiguration cost, preambles, ADC
	// framing) appear once per batch — the amortization the batched
	// datapath exists to buy.
	Stats LayerStats
}

// ExecuteFCBatch runs a fully-connected layer for a batch of queries
// without bias; see ExecuteFCBiasBatch.
func (e *Engine) ExecuteFCBatch(weights [][]fixed.Signed, xs [][]fixed.Code, act Activation, requantShift uint) BatchFCResult {
	return e.ExecuteFCBiasBatch(weights, nil, xs, act, requantShift)
}

// ExecuteFCBiasBatch runs a fully-connected layer for every query in xs as
// one matrix-matrix pass: out_q[j] = act(Σ_i W[j][i]·x_q[i] + bias[j]).
// Each output neuron's weight row is sign-partitioned once per query and
// streamed through a single shared burst (runDotBatch); the fixed per-layer
// datapath overhead is paid once for the whole batch instead of once per
// query. With len(xs) == 1 the pass is byte-identical (rng stream included)
// to ExecuteFCBias.
func (e *Engine) ExecuteFCBiasBatch(weights [][]fixed.Signed, bias []fixed.Acc, xs [][]fixed.Code, act Activation, requantShift uint) BatchFCResult {
	q := len(xs)
	var res BatchFCResult
	res.PerQuery = make([]FCResult, q)
	for qi := range res.PerQuery {
		res.PerQuery[qi].Raw = make([]fixed.Acc, len(weights))
	}
	adder := NewCrossCycleAdder(1)
	adder.Gain = e.Core.FullScaleLanes
	// Fixed per-layer datapath overhead: DAG configuration register writes
	// and stream setup — once per batch, not once per query.
	res.Stats.DatapathCycles += PerLayerOverheadCycles
	rowOut := make([]fixed.Acc, q)
	for j, row := range weights {
		e.runDotBatch(row, xs, adder, rowOut, &res.Stats)
		for qi, v := range rowOut {
			if j < len(bias) {
				v = fixed.SatAdd(v, bias[j])
			}
			res.PerQuery[qi].Raw[j] = v
		}
	}
	for qi := range res.PerQuery {
		switch act {
		case ActReLU:
			res.PerQuery[qi].Raw = ReLUVec(res.PerQuery[qi].Raw)
			res.Stats.ComputeCycles += CyclesReLU
		case ActSoftmax:
			res.PerQuery[qi].Probs = Softmax(res.PerQuery[qi].Raw)
			res.Stats.ComputeCycles += CyclesSoftmax
		}
		res.PerQuery[qi].Quantized = RequantizeVec(res.PerQuery[qi].Raw, requantShift)
	}
	return res
}
