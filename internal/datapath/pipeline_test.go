package datapath

import (
	"math"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
	"github.com/lightning-smartnic/lightning/internal/photonic"
)

func newTestEngine(t *testing.T, lanes int, noisy bool) *Engine {
	t.Helper()
	var nm *photonic.NoiseModel
	if noisy {
		nm = photonic.CalibratedNoise(11)
	}
	core, err := photonic.NewCore(lanes, nm)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(core, 77)
}

// digitalFC is the reference 8-bit digital implementation of a layer.
func digitalFC(weights [][]fixed.Signed, x []fixed.Code) []float64 {
	out := make([]float64, len(weights))
	for j, row := range weights {
		var s float64
		for i, w := range row {
			p := float64(w.Mag) * float64(x[i]) / 255
			if w.Neg {
				s -= p
			} else {
				s += p
			}
		}
		out[j] = s
	}
	return out
}

func TestExecuteFCMatchesDigital(t *testing.T) {
	e := newTestEngine(t, 2, false)
	weights := [][]fixed.Signed{
		{{Mag: 100}, {Mag: 50, Neg: true}, {Mag: 200}, {Mag: 30}},
		{{Mag: 255, Neg: true}, {Mag: 10}, {Mag: 0}, {Mag: 90}},
		{{Mag: 70}, {Mag: 70}, {Mag: 70, Neg: true}, {Mag: 70, Neg: true}},
	}
	x := []fixed.Code{40, 80, 120, 160}
	res := e.ExecuteFC(weights, x, ActIdentity, 0)
	want := digitalFC(weights, x)
	for j := range want {
		if math.Abs(float64(res.Raw[j])-want[j]) > 4 {
			t.Errorf("neuron %d = %d, want %.1f", j, res.Raw[j], want[j])
		}
	}
	if res.Stats.PhotonicSteps == 0 {
		t.Error("no photonic steps recorded")
	}
	if res.Stats.PreambleMisses != 0 {
		t.Errorf("preamble misses = %d", res.Stats.PreambleMisses)
	}
}

func TestExecuteFCReLU(t *testing.T) {
	e := newTestEngine(t, 2, false)
	weights := [][]fixed.Signed{
		{{Mag: 200, Neg: true}}, // strongly negative output
		{{Mag: 200}},            // strongly positive output
	}
	x := []fixed.Code{250}
	res := e.ExecuteFC(weights, x, ActReLU, 0)
	if res.Raw[0] != 0 {
		t.Errorf("negative neuron after ReLU = %d", res.Raw[0])
	}
	if res.Raw[1] < 150 {
		t.Errorf("positive neuron = %d, want ≈196", res.Raw[1])
	}
	if res.Quantized[1] != fixed.Code(res.Raw[1]) {
		t.Errorf("quantized (shift 0) = %d", res.Quantized[1])
	}
}

func TestExecuteFCSoftmax(t *testing.T) {
	e := newTestEngine(t, 2, false)
	weights := [][]fixed.Signed{
		{{Mag: 250}},
		{{Mag: 50}},
	}
	res := e.ExecuteFC(weights, []fixed.Code{255}, ActSoftmax, 0)
	if res.Probs == nil {
		t.Fatal("no softmax probabilities")
	}
	if res.Probs[0] <= res.Probs[1] {
		t.Errorf("probs = %v, want class 0 dominant", res.Probs)
	}
}

func TestExecuteFCWithNoiseStaysClose(t *testing.T) {
	e := newTestEngine(t, 2, true)
	weights := make([][]fixed.Signed, 4)
	x := make([]fixed.Code, 32)
	for i := range x {
		x[i] = fixed.Code(i * 8)
	}
	for j := range weights {
		weights[j] = make([]fixed.Signed, len(x))
		for i := range weights[j] {
			weights[j][i] = fixed.Signed{Mag: fixed.Code((i*7 + j*13) % 256), Neg: (i+j)%3 == 0}
		}
	}
	res := e.ExecuteFC(weights, x, ActIdentity, 0)
	want := digitalFC(weights, x)
	for j := range want {
		// 16 partials × ~2-code noise each: allow a generous band but
		// require the right magnitude.
		if math.Abs(float64(res.Raw[j])-want[j]) > 40 {
			t.Errorf("noisy neuron %d = %d, want %.1f", j, res.Raw[j], want[j])
		}
	}
}

func TestExecuteFCSparseSkipsZeroProducts(t *testing.T) {
	e := newTestEngine(t, 1, false)
	weights := [][]fixed.Signed{{{Mag: 0}, {Mag: 100}, {Mag: 0}}}
	x := []fixed.Code{200, 0, 200}
	res := e.ExecuteFC(weights, x, ActIdentity, 0)
	// Every product is zero: no photonic step needed at all.
	if res.Stats.PhotonicSteps != 0 {
		t.Errorf("photonic steps = %d, want 0 (all-zero products)", res.Stats.PhotonicSteps)
	}
	if res.Raw[0] != 0 {
		t.Errorf("output = %d", res.Raw[0])
	}
}

func TestLayerStatsAccounting(t *testing.T) {
	e := newTestEngine(t, 2, false)
	weights := [][]fixed.Signed{make([]fixed.Signed, 64)}
	for i := range weights[0] {
		weights[0][i] = fixed.Signed{Mag: 128}
	}
	x := make([]fixed.Code, 64)
	for i := range x {
		x[i] = 1
	}
	res := e.ExecuteFC(weights, x, ActIdentity, 0)
	// 64 same-sign elements over 2 lanes → 32 photonic steps.
	if res.Stats.PhotonicSteps != 32 {
		t.Errorf("PhotonicSteps = %d, want 32", res.Stats.PhotonicSteps)
	}
	if res.Stats.DatapathCycles <= PerLayerOverheadCycles {
		t.Error("datapath cycles missing framing cost")
	}
	if res.Stats.TotalCycles() != res.Stats.ComputeCycles+res.Stats.DatapathCycles {
		t.Error("TotalCycles mismatch")
	}
	if res.Stats.Seconds() <= 0 {
		t.Error("Seconds not positive")
	}
	var agg LayerStats
	agg.Add(res.Stats)
	agg.Add(res.Stats)
	if agg.PhotonicSteps != 2*res.Stats.PhotonicSteps {
		t.Error("Add did not accumulate")
	}
}

func TestRequantShiftScalesOutput(t *testing.T) {
	e := newTestEngine(t, 2, false)
	weights := [][]fixed.Signed{make([]fixed.Signed, 16)}
	for i := range weights[0] {
		weights[0][i] = fixed.Signed{Mag: 255}
	}
	x := make([]fixed.Code, 16)
	for i := range x {
		x[i] = 255
	}
	// Raw ≈ 16×255 = 4080; shift 4 → ≈255.
	res := e.ExecuteFC(weights, x, ActIdentity, 4)
	if res.Quantized[0] < 240 {
		t.Errorf("quantized = %d, want ≈255", res.Quantized[0])
	}
}
