package datapath

import (
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fixed"
)

func TestStreamerWaitsForAllLanes(t *testing.T) {
	var streamed [][][]fixed.Code
	s := NewStreamer(2, 64, func(lanes [][]fixed.Code) {
		cp := make([][]fixed.Code, len(lanes))
		for i := range lanes {
			cp[i] = append([]fixed.Code(nil), lanes[i]...)
		}
		streamed = append(streamed, cp)
	})
	// Only lane 0 has data: Listing 1's count (Σvalid = 1 < 2) must block.
	s.Feed(0, []fixed.Code{1, 2, 3})
	if s.Tick() {
		t.Fatal("streamed with a starved lane")
	}
	if s.StallCycles != 1 {
		t.Errorf("StallCycles = %d", s.StallCycles)
	}
	// Lane 1 catches up (late DRAM read): now both stream in lockstep.
	s.Feed(1, []fixed.Code{9, 8, 7})
	if !s.Tick() {
		t.Fatal("did not stream with both lanes valid")
	}
	if len(streamed) != 1 {
		t.Fatalf("streamed %d cycles", len(streamed))
	}
	if streamed[0][0][0] != 1 || streamed[0][1][0] != 9 {
		t.Errorf("lane data = %v", streamed[0])
	}
}

func TestStreamerSynchronizationUnderJitter(t *testing.T) {
	// Property R3: regardless of how raggedly the lanes are fed, the i-th
	// sample of lane 0 must stream in the same cycle as the i-th sample of
	// lane 1.
	type pair struct{ a, b fixed.Code }
	var got []pair
	s := NewStreamer(2, 1024, func(lanes [][]fixed.Code) {
		n := len(lanes[0])
		if len(lanes[1]) < n {
			n = len(lanes[1])
		}
		for i := 0; i < n; i++ {
			got = append(got, pair{lanes[0][i], lanes[1][i]})
		}
	})
	// Feed 256 paired samples with deliberately mismatched burst sizes.
	next := 0
	fedA, fedB := 0, 0
	for cycle := 0; next < 256 || s.Pending() > 0; cycle++ {
		if next < 256 {
			// Lane 0 gets bursts of 7, lane 1 bursts of 13.
			for fedA < 256 && fedA < (cycle+1)*7 {
				s.Feed(0, []fixed.Code{fixed.Code(fedA)})
				fedA++
			}
			for fedB < 256 && fedB < (cycle+1)*13 {
				s.Feed(1, []fixed.Code{fixed.Code(fedB)})
				fedB++
			}
			next = fedA
		}
		s.Tick()
		if cycle > 10000 {
			t.Fatal("streamer livelock")
		}
	}
	if len(got) == 0 {
		t.Fatal("nothing streamed")
	}
	for i, p := range got {
		if p.a != p.b {
			t.Fatalf("desync at sample %d: lane0=%d lane1=%d", i, p.a, p.b)
		}
	}
}

func TestStreamerFeedBackPressure(t *testing.T) {
	s := NewStreamer(1, 4, nil)
	if n := s.Feed(0, []fixed.Code{1, 2, 3, 4, 5, 6}); n != 4 {
		t.Errorf("Feed accepted %d, want 4", n)
	}
}

func TestStreamerFeedPanicsOnBadLane(t *testing.T) {
	s := NewStreamer(1, 4, nil)
	defer func() {
		if recover() == nil {
			t.Error("bad lane did not panic")
		}
	}()
	s.Feed(1, []fixed.Code{1})
}

func TestStreamerRunDrains(t *testing.T) {
	s := NewStreamer(2, 64, nil)
	s.Feed(0, make([]fixed.Code, 40))
	s.Feed(1, make([]fixed.Code, 40))
	cycles := s.Run(100)
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after Run", s.Pending())
	}
	// 40 samples at 16/cycle → 3 cycles.
	if cycles != 3 {
		t.Errorf("Run took %d cycles, want 3", cycles)
	}
}

func TestNewStreamerValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStreamer(0) did not panic")
		}
	}()
	NewStreamer(0, 1, nil)
}
