package lightning

import (
	"bytes"
	"context"
	"net"
	"testing"

	"github.com/lightning-smartnic/lightning/internal/fault"
	"github.com/lightning-smartnic/lightning/internal/netbatch"
	"github.com/lightning-smartnic/lightning/internal/nic"
)

// countDecodableFrames walks data with the same strict length-prefix policy
// the serve path uses and returns how many complete frames decode before
// the first error.
func countDecodableFrames(data []byte) int {
	n := 0
	for len(data) > 0 {
		var m Message
		consumed, err := m.DecodeNext(data)
		if err != nil {
			return n
		}
		data = data[consumed:]
		n++
	}
	return n
}

// TestServeUDPDeadlineArmsPerBatchNotPerDatagram is the deadline-cadence
// regression test: the batched serve loop arms the read deadline once per
// batch read, so the deadline syscalls for N buffered datagrams collapse
// from ~N (the single-message loop's cost) to ~N/RxBatch.
func TestServeUDPDeadlineArmsPerBatchNotPerDatagram(t *testing.T) {
	const width = 64
	const sent = 64
	arm := func(fallback bool) (uint64, uint64) {
		n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 7,
			Wire: WireConfig{ForceFallback: fallback}})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterModel(4, "halves", halvesModel(width)); err != nil {
			t.Fatal(err)
		}
		pc := fault.NewStubConn()
		for i := 0; i < sent; i++ {
			pc.Enqueue(encodeQuery(t, uint32(i+1), 4, make([]byte, width)))
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // reader drains the whole queue, then exits on the idle tick
		if err := n.ServeUDP(ctx, pc); err != nil {
			t.Fatalf("ServeUDP: %v", err)
		}
		if got := pc.Writes(); got != sent {
			t.Fatalf("responses = %d, want %d", got, sent)
		}
		return pc.DeadlineCalls(), n.Metrics().Serve.RxBatchSize.Sum
	}
	batchArms, batchRx := arm(false)
	fallbackArms, _ := arm(true)
	if batchRx != sent {
		t.Errorf("rx histogram Sum = %d, want %d datagrams", batchRx, sent)
	}
	if netbatch.FallbackForced() {
		// The LIGHTNING_NETBATCH=fallback CI leg forces BOTH runs onto the
		// single-message path; the cadence reduction is a fast-path claim.
		t.Skip("deadline cadence requires the batch path; fallback forced via env")
	}
	// Batched: ceil(64/16) data reads + one timeout read = ~5 arms. The
	// fallback reads one datagram per call, so it pays >= sent arms.
	if fallbackArms < sent {
		t.Errorf("fallback deadline arms = %d, want >= %d (one per datagram)", fallbackArms, sent)
	}
	if batchArms*4 >= fallbackArms {
		t.Errorf("batched deadline arms = %d vs fallback %d: want >= 4x reduction",
			batchArms, fallbackArms)
	}
}

// TestWireFallbackByteIdenticalResponses is the differential test for the
// portable fallback: identical seeded traffic — single frames, coalesced
// multi-frame datagrams, a fragment train, garbage, and a truncated
// coalesced tail — must produce byte-identical response streams whether the
// serve loop reads through the batch seam's native path or the forced
// single-message fallback.
func TestWireFallbackByteIdenticalResponses(t *testing.T) {
	const width = 64
	traffic := func() [][]byte {
		var dgrams [][]byte
		bright := make([]byte, width)
		for i := 0; i < width/2; i++ {
			bright[i] = 200
		}
		// Three plain single-frame queries.
		dgrams = append(dgrams,
			encodeQuery(t, 1, 4, make([]byte, width)),
			encodeQuery(t, 2, 4, bright),
			encodeQuery(t, 3, 4, make([]byte, width)))
		// One datagram carrying three coalesced frames.
		co := append([]byte(nil), encodeQuery(t, 4, 4, bright)...)
		co = append(co, encodeQuery(t, 5, 4, make([]byte, width))...)
		co = append(co, encodeQuery(t, 6, 4, bright)...)
		dgrams = append(dgrams, co)
		// Unknown model: a deterministic Err response.
		dgrams = append(dgrams, encodeQuery(t, 7, 9, make([]byte, width)))
		// Pure garbage: dropped without a response.
		dgrams = append(dgrams, []byte{0xde, 0xad, 0xbe, 0xef})
		// Valid frame followed by a truncated tail: one response, strict
		// drop of the rest.
		tail := append([]byte(nil), encodeQuery(t, 8, 4, bright)...)
		tail = append(tail, 0x4c, 0x50, 0x01)
		dgrams = append(dgrams, tail)
		// A fragmented query (payload too wide for the model, so the
		// reassembled whole earns a deterministic Err response).
		frags, err := nic.Fragment(9, 4, make([]byte, 3000), nic.MaxFragPayload)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range frags {
			raw, err := m.Encode()
			if err != nil {
				t.Fatal(err)
			}
			dgrams = append(dgrams, raw)
		}
		return dgrams
	}

	run := func(fallback bool) ([][]byte, Metrics) {
		n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 21,
			Wire: WireConfig{ForceFallback: fallback}})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterModel(4, "halves", halvesModel(width)); err != nil {
			t.Fatal(err)
		}
		pc := fault.NewStubConn()
		pc.RecordWrites = true
		for _, d := range traffic() {
			pc.Enqueue(d)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := n.ServeUDP(ctx, pc); err != nil {
			t.Fatalf("ServeUDP (fallback=%v): %v", fallback, err)
		}
		return pc.Sent(), n.Metrics()
	}

	fastSent, fastM := run(false)
	slowSent, slowM := run(true)
	if len(fastSent) == 0 {
		t.Fatal("fast path produced no responses")
	}
	if len(fastSent) != len(slowSent) {
		t.Fatalf("response counts differ: fast %d, fallback %d", len(fastSent), len(slowSent))
	}
	for i := range fastSent {
		if !bytes.Equal(fastSent[i], slowSent[i]) {
			t.Errorf("response %d differs:\n fast     %x\n fallback %x", i, fastSent[i], slowSent[i])
		}
	}
	if fastM.Served != slowM.Served {
		t.Errorf("Served differs: fast %d, fallback %d", fastM.Served, slowM.Served)
	}
	for _, pair := range [][3]uint64{
		{fastM.Serve.CoalescedFrames, slowM.Serve.CoalescedFrames, 2},
		{fastM.Serve.OversizedCoalesce, slowM.Serve.OversizedCoalesce, 1},
		{fastM.Serve.DecodeErrors, slowM.Serve.DecodeErrors, 1},
	} {
		if pair[0] != pair[2] || pair[1] != pair[2] {
			t.Errorf("drop accounting differs or is wrong: fast %d, fallback %d, want %d",
				pair[0], pair[1], pair[2])
		}
	}
}

// TestServeWireMetrics pins the rx-side wire accounting: batch-size
// histograms, coalesced-frame and oversized-tail counters, and the
// seam-level syscall tallies all land in Metrics.Serve.
func TestServeWireMetrics(t *testing.T) {
	const width = 64
	n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RegisterModel(4, "halves", halvesModel(width)); err != nil {
		t.Fatal(err)
	}
	pc := fault.NewStubConn()
	co := append([]byte(nil), encodeQuery(t, 1, 4, make([]byte, width))...)
	co = append(co, encodeQuery(t, 2, 4, make([]byte, width))...)
	co = append(co, encodeQuery(t, 3, 4, make([]byte, width))...)
	pc.Enqueue(co)
	tail := append([]byte(nil), encodeQuery(t, 4, 4, make([]byte, width))...)
	pc.Enqueue(append(tail, 0x00))
	pc.Enqueue([]byte{0xba, 0xad})
	pc.Enqueue(encodeQuery(t, 5, 4, make([]byte, width)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := n.ServeUDP(ctx, pc); err != nil {
		t.Fatalf("ServeUDP: %v", err)
	}
	m := n.Metrics()
	if m.Served != 5 {
		t.Errorf("Served = %d, want 5", m.Served)
	}
	if got := pc.Writes(); got != 5 {
		t.Errorf("responses = %d, want 5", got)
	}
	s := m.Serve
	if s.CoalescedFrames != 2 {
		t.Errorf("CoalescedFrames = %d, want 2", s.CoalescedFrames)
	}
	if s.OversizedCoalesce != 1 {
		t.Errorf("OversizedCoalesce = %d, want 1", s.OversizedCoalesce)
	}
	if s.DecodeErrors != 1 {
		t.Errorf("DecodeErrors = %d, want 1", s.DecodeErrors)
	}
	if s.RxBatchSize.Sum != 4 || s.RxBatchSize.Count == 0 {
		t.Errorf("RxBatchSize = %+v, want Sum 4 over >= 1 batch", s.RxBatchSize)
	}
	if s.TxBatchSize.Sum != 5 || s.TxBatchSize.Count == 0 {
		t.Errorf("TxBatchSize = %+v, want Sum 5 over >= 1 flush", s.TxBatchSize)
	}
	if s.RxSyscalls == 0 || s.TxSyscalls == 0 {
		t.Errorf("seam syscall counters empty: rx %d, tx %d", s.RxSyscalls, s.TxSyscalls)
	}
	// Amortization claims hold only when the seam actually batches; the
	// LIGHTNING_NETBATCH=fallback CI leg runs this test on the
	// single-message path, where every read moves one datagram by design.
	if !netbatch.FallbackForced() {
		if mean := s.RxBatchSize.Mean(); mean <= 1 {
			t.Errorf("rx batch mean = %.2f, want > 1 (the whole burst in few reads)", mean)
		}
		if s.RxSyscalls >= s.RxBatchSize.Sum+2 {
			t.Errorf("RxSyscalls = %d for %d datagrams: batching amortized nothing",
				s.RxSyscalls, s.RxBatchSize.Sum)
		}
	}
}

// TestTxBatcherCoalescePacking drives the opt-in tx frame coalescer: same-
// destination responses pack as concatenated frames into one datagram,
// destinations never mix, and every packed datagram respects the MTU bound.
func TestTxBatcherCoalescePacking(t *testing.T) {
	n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 5,
		Wire: WireConfig{TxCoalesce: true}})
	if err != nil {
		t.Fatal(err)
	}
	pc := fault.NewStubConn()
	pc.RecordWrites = true
	tx := newTxBatcher(n, n.wrapConn(pc))
	addrA := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1111}
	addrB := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 2222}
	resp := func(id uint32) *Response {
		return &Response{RequestID: id, ModelID: 4, Class: 1, Probs: []uint8{9, 200}}
	}
	tx.queue(resp(1), addrA)
	tx.queue(resp(2), addrA)
	tx.queue(resp(3), addrB)
	tx.queue(resp(4), addrA)
	tx.flush()
	sent := pc.Sent()
	if len(sent) != 2 {
		t.Fatalf("datagrams = %d, want 2 (one per destination)", len(sent))
	}
	// Flush order follows first-queue order: A's packed datagram, then B's.
	var gotA []uint32
	data := sent[0]
	for len(data) > 0 {
		var m Message
		consumed, derr := m.DecodeNext(data)
		if derr != nil {
			t.Fatalf("packed datagram failed decode: %v", derr)
		}
		data = data[consumed:]
		gotA = append(gotA, m.RequestID)
	}
	if len(gotA) != 3 || gotA[0] != 1 || gotA[1] != 2 || gotA[2] != 4 {
		t.Errorf("destination A frames = %v, want [1 2 4]", gotA)
	}
	if got := countDecodableFrames(sent[1]); got != 1 {
		t.Errorf("destination B frames = %d, want 1", got)
	}
	// A fresh flush with nothing queued writes nothing.
	before := pc.Writes()
	tx.flush()
	if pc.Writes() != before {
		t.Error("empty flush wrote datagrams")
	}
}

// TestTxBatcherCoalesceMTUBound packs responses against a tiny MTU: the
// open datagram closes at the bound and later responses open fresh ones, so
// no datagram ever exceeds the MTU.
func TestTxBatcherCoalesceMTUBound(t *testing.T) {
	// One response frame here is 12 (header) + 2 (class) + 2 (probs) = 16
	// bytes; MTU 40 fits two frames but not three.
	n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 5,
		Wire: WireConfig{TxCoalesce: true, MTU: 40}})
	if err != nil {
		t.Fatal(err)
	}
	pc := fault.NewStubConn()
	pc.RecordWrites = true
	tx := newTxBatcher(n, n.wrapConn(pc))
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1111}
	for id := uint32(1); id <= 5; id++ {
		tx.queue(&Response{RequestID: id, ModelID: 4, Class: 0, Probs: []uint8{1, 2}}, addr)
	}
	tx.flush()
	sent := pc.Sent()
	if len(sent) != 3 {
		t.Fatalf("datagrams = %d, want 3 (2+2+1 frames under MTU 40)", len(sent))
	}
	total := 0
	for i, d := range sent {
		if len(d) > 40 {
			t.Errorf("datagram %d is %d bytes, exceeds MTU 40", i, len(d))
		}
		total += countDecodableFrames(d)
	}
	if total != 5 {
		t.Errorf("total frames across datagrams = %d, want 5", total)
	}
}

// TestTxBatcherWriteErrorSkipsAndCounts: a refused write counts once per
// lost response and never abandons the rest of the flush (here every write
// fails, so every pending response is counted and the batch still clears).
func TestTxBatcherWriteErrorSkipsAndCounts(t *testing.T) {
	n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pc := fault.NewStubConn()
	pc.FailWrites = true
	tx := newTxBatcher(n, n.wrapConn(pc))
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1111}
	for id := uint32(1); id <= 3; id++ {
		tx.queue(&Response{RequestID: id, ModelID: 4, Probs: []uint8{0, 0}}, addr)
	}
	tx.flush()
	if got := n.Metrics().Serve.WriteErrors; got != 3 {
		t.Errorf("WriteErrors = %d, want 3", got)
	}
	if pc.Writes() != 0 {
		t.Errorf("writes = %d, want 0 (every write refused)", pc.Writes())
	}
	// The batch cleared despite the failures: recovery writes go through.
	pc.FailWrites = false
	tx.queue(&Response{RequestID: 9, ModelID: 4, Probs: []uint8{0, 0}}, addr)
	tx.flush()
	if pc.Writes() != 1 {
		t.Errorf("post-recovery writes = %d, want 1", pc.Writes())
	}
}

// TestTxBatcherSteadyStateZeroAllocs is the coalescer's AllocsPerRun guard
// (CI bench-smoke runs it by name): once the free list and pending storage
// are warm, queue+flush cycles allocate nothing — in both accumulation
// modes.
func TestTxBatcherSteadyStateZeroAllocs(t *testing.T) {
	for _, coalesce := range []bool{false, true} {
		name := "plain"
		if coalesce {
			name = "coalesce"
		}
		t.Run(name, func(t *testing.T) {
			n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 5,
				Wire: WireConfig{TxCoalesce: coalesce}})
			if err != nil {
				t.Fatal(err)
			}
			pc := fault.NewStubConn()
			tx := newTxBatcher(n, n.wrapConn(pc))
			addr := net.Addr(fault.Addr{})
			resp := &Response{RequestID: 1, ModelID: 4, Class: 1, Probs: []uint8{3, 250}}
			cycle := func() {
				tx.queue(resp, addr)
				tx.queue(resp, addr)
				tx.flush()
			}
			for i := 0; i < 8; i++ {
				cycle() // warm the free list and pending capacity
			}
			if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
				t.Errorf("%s queue+flush allocates %.1f per cycle, want 0", name, allocs)
			}
		})
	}
}

// FuzzCoalescedFrameDecode feeds adversarial datagrams — truncated headers,
// stretched length prefixes, valid frames with corrupt tails — through the
// serve path's coalesced-frame walk. Invariants: never panic, and never
// emit more responses than the datagram has fully-decodable frames (in
// particular, a datagram whose first frame is malformed gets none).
func FuzzCoalescedFrameDecode(f *testing.F) {
	const width = 8
	mustEncode := func(id uint32, modelID uint16, payload []byte) []byte {
		raw, err := (&Message{RequestID: id, ModelID: modelID, Payload: payload}).Encode()
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	one := mustEncode(1, 4, make([]byte, width))
	two := append(append([]byte(nil), one...), mustEncode(2, 4, make([]byte, width))...)
	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(two[:len(two)-3])                // truncated coalesced tail
	f.Add(append([]byte(nil), two[5:]...)) // mid-frame start
	f.Add([]byte{0x4c, 0x50, 0x01, 0x00, 0xff, 0xff})
	n, err := New(Config{Lanes: 2, Noiseless: true, Seed: 13})
	if err != nil {
		f.Fatal(err)
	}
	if err := n.RegisterModel(4, "halves", SyntheticHalvesModel(width)); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pc := fault.NewStubConn()
		tx := newTxBatcher(n, n.wrapConn(pc))
		valid := countDecodableFrames(data)
		n.serveDatagram(data, fault.Addr{}, tx)
		tx.flush()
		writes := pc.Writes()
		if valid == 0 && writes != 0 {
			t.Fatalf("undecodable datagram %x produced %d responses", data, writes)
		}
		if writes > uint64(valid) {
			t.Fatalf("datagram %x: %d responses for %d decodable frames — a partial frame was served",
				data, writes, valid)
		}
	})
}
