package lightning

import (
	"github.com/lightning-smartnic/lightning/internal/fixed"
	"github.com/lightning-smartnic/lightning/internal/nn"
)

// SyntheticHalvesModel hand-builds a two-class classifier over `width`
// inputs without any training: output neuron 0 sums the first half of the
// query, neuron 1 the second, so whichever half is brighter wins. Load
// harnesses (cmd/lightning-loadgen -self) and lifecycle tests use it to get
// a servable model at zero training cost whose answers still prove
// end-to-end correctness — a response carrying the wrong class means the
// query bytes were mangled somewhere in flight.
func SyntheticHalvesModel(width int) *TrainedModel {
	mk := func(lo, hi int) []fixed.Signed {
		row := make([]fixed.Signed, width)
		for i := lo; i < hi; i++ {
			row[i] = fixed.Signed{Mag: 255}
		}
		return row
	}
	return &TrainedModel{
		Sizes: []int{width, 2},
		Layers: []nn.QuantizedLayer{{
			Weights: [][]fixed.Signed{mk(0, width/2), mk(width/2, width)},
			Bias:    []fixed.Acc{0, 0},
			Shift:   10,
			Final:   true,
			WScale:  fixed.Scale{Max: 1},
		}},
	}
}

// SyntheticDeepHalvesModel is SyntheticHalvesModel stretched to depth
// layers: the first layer reduces the query to its two half-sums, and each
// further layer passes both codes through an identity diagonal. The answers
// stay as checkable as the shallow model's, but the network now has layers
// to cut, which is what the cluster plane's pipeline partitioning needs — a
// one-layer model cannot span two nodes.
//
// Requantization shifts are chosen to keep the two codes near query scale
// at every boundary: layer 0 divides its half-sum accumulators by the half
// width (so a bright half of 200s re-emerges as a ~200 code), and the
// identity layers shift by zero, since the engine's full-scale gain already
// maps a single-product dot back onto input scale. Anything coarser decays
// the codes toward zero each hop and the final softmax collapses to a tie.
func SyntheticDeepHalvesModel(width, depth int) *TrainedModel {
	if depth < 1 {
		depth = 1
	}
	m := SyntheticHalvesModel(width)
	if depth == 1 {
		return m
	}
	m.Layers[0].Final = false
	m.Layers[0].Shift = ceilLog2(width / 2)
	for l := 1; l < depth; l++ {
		m.Sizes = append(m.Sizes, 2)
		m.Layers = append(m.Layers, nn.QuantizedLayer{
			Weights: [][]fixed.Signed{
				{{Mag: 255}, {}},
				{{}, {Mag: 255}},
			},
			Bias:   []fixed.Acc{0, 0},
			Shift:  0,
			Final:  l == depth-1,
			WScale: fixed.Scale{Max: 1},
		})
	}
	return m
}

// ceilLog2 returns the smallest s with 2^s >= n (0 for n <= 1).
func ceilLog2(n int) uint {
	s := uint(0)
	for v := 1; v < n; v <<= 1 {
		s++
	}
	return s
}
