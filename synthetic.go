package lightning

import (
	"github.com/lightning-smartnic/lightning/internal/fixed"
	"github.com/lightning-smartnic/lightning/internal/nn"
)

// SyntheticHalvesModel hand-builds a two-class classifier over `width`
// inputs without any training: output neuron 0 sums the first half of the
// query, neuron 1 the second, so whichever half is brighter wins. Load
// harnesses (cmd/lightning-loadgen -self) and lifecycle tests use it to get
// a servable model at zero training cost whose answers still prove
// end-to-end correctness — a response carrying the wrong class means the
// query bytes were mangled somewhere in flight.
func SyntheticHalvesModel(width int) *TrainedModel {
	mk := func(lo, hi int) []fixed.Signed {
		row := make([]fixed.Signed, width)
		for i := lo; i < hi; i++ {
			row[i] = fixed.Signed{Mag: 255}
		}
		return row
	}
	return &TrainedModel{
		Sizes: []int{width, 2},
		Layers: []nn.QuantizedLayer{{
			Weights: [][]fixed.Signed{mk(0, width/2), mk(width/2, width)},
			Bias:    []fixed.Acc{0, 0},
			Shift:   10,
			Final:   true,
			WScale:  fixed.Scale{Max: 1},
		}},
	}
}
