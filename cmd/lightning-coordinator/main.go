// Command lightning-coordinator fronts a multi-NIC Lightning cluster: it
// splits a model into a layer pipeline, installs the partitions onto
// lightning-serve nodes over the wire, and serves the ordinary Lightning
// protocol on its own UDP socket — scattering each query through the node
// pipeline and gathering the verdict. Nodes that fail trip per-node circuit
// breakers; the coordinator re-plans onto the survivors and keeps answering,
// degrading to explicit error responses only when no viable plan remains.
//
//	lightning-serve -addr :4056 -model none -noiseless &
//	lightning-serve -addr :4057 -model none -noiseless &
//	lightning-coordinator -addr :4055 -nodes 127.0.0.1:4056,127.0.0.1:4057 -synthetic 64
//
// Clients (including cmd/lightning-loadgen) need no changes: the front door
// speaks the exact wire protocol a single NIC does.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	lightning "github.com/lightning-smartnic/lightning"
	"github.com/lightning-smartnic/lightning/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":4055", "UDP listen address for the cluster front door")
	nodes := flag.String("nodes", "", "comma-separated UDP addresses of lightning-serve nodes (run them with -allow-install)")
	loadPath := flag.String("load", "", "load the model to serve from this file (lightning-serve -save writes it)")
	synthetic := flag.Int("synthetic", 0, "serve the synthetic deep halves model of this input width instead of -load")
	depth := flag.Int("depth", 4, "synthetic model depth in layers (needs -synthetic)")
	modelID := flag.Uint("model-id", 4, "user-facing wire model id the front door answers for")
	stages := flag.Int("stages", 0, "pipeline depth (0 = one stage per node)")
	replicate := flag.Bool("replicate", false, "install each stage on a second node too (enables -hedge and instant failover)")
	hedge := flag.Duration("hedge", 0, "duplicate a hop onto its replica if the primary is silent this long (0 disables; needs -replicate)")
	budget := flag.Duration("budget", 2*time.Second, "end-to-end request budget")
	hopRetries := flag.Int("hop-retries", 1, "extra attempts per pipeline hop")
	workers := flag.Int("workers", 4, "front-door worker pool size")
	seed := flag.Uint64("seed", 1, "deterministic seed for probe inputs")
	statsEvery := flag.Duration("stats", 10*time.Second, "periodic stats line interval (0 disables)")
	flag.Parse()

	if *nodes == "" {
		log.Fatal("-nodes is required (comma-separated lightning-serve addresses)")
	}
	var nodeAddrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodeAddrs = append(nodeAddrs, a)
		}
	}

	var model *lightning.TrainedModel
	switch {
	case *synthetic > 0:
		model = lightning.SyntheticDeepHalvesModel(*synthetic, *depth)
	case *loadPath != "":
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = lightning.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -load or -synthetic is required")
	}

	coord, err := cluster.New(cluster.Config{
		Nodes:      nodeAddrs,
		Model:      model,
		ModelID:    uint16(*modelID),
		Stages:     *stages,
		Replicate:  *replicate,
		Hedge:      *hedge,
		Budget:     *budget,
		HopRetries: *hopRetries,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	pc, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()

	m := coord.Metrics()
	log.Printf("serving model id %d on %s: %d-layer model in %d stage(s) over %d node(s)",
		*modelID, pc.LocalAddr(), len(model.Layers), m.Stages, len(nodeAddrs))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	statsLine := func(m cluster.Metrics) string {
		ns := ""
		for i, n := range m.Nodes {
			if i > 0 {
				ns += " "
			}
			ns += fmt.Sprintf("%s:%s", n.Addr, n.State)
		}
		return fmt.Sprintf(
			"served %d, degraded %d | epoch %d (%d stages, %d replans) | nodes [%s] | retries %d, hedges %d, restarts %d | installs %d (%d failed)",
			m.Served, m.Degraded, m.Epoch, m.Stages, m.Replans, ns,
			m.HopRetries, m.Hedges, m.Restarts, m.Installs, m.InstallErrors)
	}
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					log.Print(statsLine(coord.Metrics()))
				}
			}
		}()
	}

	if err := coord.ServeUDP(ctx, pc, *workers); err != nil {
		log.Fatal(err)
	}
	log.Print("final: ", statsLine(coord.Metrics()))
}
