// Command lightning-client sends inference queries to a lightning-serve
// instance and reports the round-trip latency distribution.
//
//	lightning-client -addr 127.0.0.1:4055 -model anomaly -n 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	lightning "github.com/lightning-smartnic/lightning"
	"github.com/lightning-smartnic/lightning/internal/stats"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4055", "server UDP address")
	modelName := flag.String("model", "anomaly", "model to query: anomaly | iot | digits")
	n := flag.Int("n", 100, "number of queries")
	seed := flag.Uint64("seed", 99, "dataset seed (use one the server didn't train on)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-attempt round-trip timeout")
	retries := flag.Int("retries", 2, "resend attempts after a timeout (lost fragments/responses)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
	tolerateErrors := flag.Bool("tolerate-errors", false,
		"count Err-flagged responses (e.g. a degraded server with quarantined shards) instead of aborting")
	flag.Parse()

	var set *lightning.Dataset
	var id uint16
	switch *modelName {
	case "anomaly":
		set, id = lightning.AnomalyDataset(*n, *seed), 1
	case "iot":
		set, id = lightning.IoTTrafficDataset(*n, *seed), 2
	case "digits":
		set, id = lightning.DigitsDataset(*n, *seed), 3
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	client, err := lightning.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.Timeout = *timeout
	client.Retries = *retries
	client.RetryBackoff = *backoff

	var latencies []float64
	correct, serverErrors := 0, 0
	for i, ex := range set.Examples {
		resp, rtt, err := client.Infer(id, ex.X)
		var se *lightning.ServerError
		if errors.As(err, &se) {
			// A degraded server (every shard quarantined mid-recovery)
			// answers honestly with Err-flagged responses; with
			// -tolerate-errors the run rides through and reports them.
			if *tolerateErrors {
				serverErrors++
				continue
			}
			log.Fatalf("query %d: %v (is model %q registered? rerun with -tolerate-errors to ride out a degraded server)", i, se, *modelName)
		}
		if err != nil {
			log.Fatalf("query %d: %v", i, err)
		}
		if int(resp.Class) == ex.Label {
			correct++
		}
		latencies = append(latencies, float64(rtt.Microseconds()))
	}
	if len(latencies) == 0 {
		log.Fatalf("no queries answered (%d server errors)", serverErrors)
	}
	cdf := stats.NewCDF(latencies)
	fmt.Printf("%d queries against %s\n", len(latencies), *addr)
	if serverErrors > 0 {
		fmt.Printf("server errors tolerated: %d\n", serverErrors)
	}
	fmt.Printf("accuracy vs synthetic labels: %.1f%%\n", float64(correct)/float64(len(latencies))*100)
	fmt.Printf("latency p50 %.0f µs, p90 %.0f µs, p99 %.0f µs\n",
		cdf.Percentile(0.5), cdf.Percentile(0.9), cdf.Percentile(0.99))
}
