// Command lightning-emu runs the §7 accuracy emulation (Fig 19): the four
// proxy networks under 8-bit photonic, 8-bit digital and 32-bit digital
// schemes, reporting top-5 agreement with the fp32 reference.
//
//	lightning-emu -inputs 50
package main

import (
	"flag"
	"log"
	"os"

	"github.com/lightning-smartnic/lightning/internal/exp"
)

func main() {
	inputs := flag.Int("inputs", 30, "synthetic inputs per network")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()
	if err := exp.Fig19(os.Stdout, *inputs, *seed); err != nil {
		log.Fatal(err)
	}
}
