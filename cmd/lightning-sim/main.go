// Command lightning-sim runs the §9 large-scale discrete-event simulation:
// Poisson inference arrivals over seven DNN models served by Lightning and
// the baseline accelerators, producing Figures 21 and 22.
//
//	lightning-sim -util 0.95 -traces 10 -requests 2000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/lightning-smartnic/lightning/internal/exp"
	"github.com/lightning-smartnic/lightning/internal/sim"
)

func main() {
	util := flag.Float64("util", 0.95, "utilization target for the most congested baseline")
	traces := flag.Int("traces", 10, "randomized traces to average")
	requests := flag.Int("requests", 2000, "requests per trace")
	seed := flag.Uint64("seed", 1, "trace seed")
	flag.Parse()

	cfg := sim.DefaultCompareConfig()
	cfg.Utilization = *util
	cfg.Traces = *traces
	cfg.Requests = *requests
	cfg.Seed = *seed
	if err := exp.Fig21and22(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := exp.Table6(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
