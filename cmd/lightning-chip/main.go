// Command lightning-chip prints the §8 ASIC study: the 65 nm synthesis
// anchors (Table 1), the 7 nm 576-MAC chip projection (Table 2), the energy
// comparison (Table 3), the core-architecture algebra (Table 5), and the
// §10 cost estimate. Flags support parameter studies beyond the paper's
// design point.
//
//	lightning-chip -wavelengths 24 -parallel 24 -batch 1 -clock 97e9
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/lightning-smartnic/lightning/internal/chip"
	"github.com/lightning-smartnic/lightning/internal/exp"
	"github.com/lightning-smartnic/lightning/internal/photonic"
)

func main() {
	n := flag.Int("wavelengths", 24, "accumulation wavelengths N")
	wpar := flag.Int("parallel", 24, "parallel modulations per modulator W")
	batch := flag.Int("batch", 1, "inference batch B")
	clock := flag.Float64("clock", 97e9, "analog compute clock (Hz)")
	flag.Parse()

	for _, id := range []string{"table1", "table3", "table4", "table5", "cost"} {
		if err := exp.Run(id, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	cfg := chip.DefaultChip()
	cfg.Spec = photonic.ScaledCoreSpec{N: *n, W: *wpar, B: *batch}
	cfg.ClockHz = *clock
	b, err := chip.Project(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Table 2: chip projection for N=%d W=%d B=%d @ %.3g GHz (%d MACs/step) ===\n",
		*n, *wpar, *batch, *clock/1e9, cfg.Spec.MACsPerStep())
	fmt.Print(b.String())
	fmt.Printf("throughput: %.4g MAC/s; vs Brainwave FPGA area: %.2f× smaller\n",
		float64(cfg.Spec.MACsPerStep())*cfg.ClockHz, chip.CompareArea(b))
}
