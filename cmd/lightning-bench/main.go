// Command lightning-bench regenerates the paper's tables and figures from
// this reproduction's substrates. Run with -exp all (default) for the full
// evaluation, or pick one experiment:
//
//	lightning-bench -exp fig21
//	lightning-bench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lightning-smartnic/lightning/internal/exp"
)

func main() {
	id := flag.String("exp", "all", "experiment id (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.IDs() {
			fmt.Println(e)
		}
		return
	}
	var err error
	switch *id {
	case "all":
		err = exp.All(os.Stdout)
	case "fig16full":
		// The exact LeNet-300-100 architecture over 784 inputs: compute-
		// heavy, so it runs only on request rather than as part of "all".
		err = exp.Fig16Full(os.Stdout, 100, 1)
	default:
		err = exp.Run(*id, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightning-bench:", err)
		os.Exit(1)
	}
}
