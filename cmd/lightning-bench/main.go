// Command lightning-bench regenerates the paper's tables and figures from
// this reproduction's substrates, and runs the performance-trajectory
// benchmark set. Run with -exp all (default) for the full evaluation, pick
// one experiment, or run the named benchmarks:
//
//	lightning-bench -exp fig21
//	lightning-bench -list
//	lightning-bench -bench all -out BENCH.json
//	lightning-bench -bench all -short -baseline BENCH_PR5.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lightning-smartnic/lightning/internal/bench"
	"github.com/lightning-smartnic/lightning/internal/exp"
)

func main() {
	id := flag.String("exp", "all", "experiment id (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	benchName := flag.String("bench", "", "run the named trajectory benchmark (or \"all\") instead of experiments")
	benchtime := flag.String("benchtime", "", "per-benchmark measurement time (default 1s; overrides -short)")
	short := flag.Bool("short", false, "smoke mode: 100ms per benchmark")
	out := flag.String("out", "", "write the benchmark JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "prior report to embed as the before measurement")
	flag.Parse()

	if *list {
		for _, e := range exp.IDs() {
			fmt.Println(e)
		}
		for _, b := range bench.Set() {
			fmt.Println("bench:" + b.Name)
		}
		return
	}

	if *benchName != "" {
		if err := runBench(*benchName, *benchtime, *short, *out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "lightning-bench:", err)
			os.Exit(1)
		}
		return
	}

	var err error
	switch *id {
	case "all":
		err = exp.All(os.Stdout)
	case "fig16full":
		// The exact LeNet-300-100 architecture over 784 inputs: compute-
		// heavy, so it runs only on request rather than as part of "all".
		err = exp.Fig16Full(os.Stdout, 100, 1)
	default:
		err = exp.Run(*id, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightning-bench:", err)
		os.Exit(1)
	}
}

// runBench executes the trajectory set and writes the JSON report.
func runBench(name, benchtime string, short bool, out, baseline string) error {
	if benchtime == "" {
		benchtime = "1s"
		if short {
			benchtime = "100ms"
		}
	}
	rep, err := bench.RunSet(name, benchtime, os.Stderr)
	if err != nil {
		return err
	}
	if baseline != "" {
		if err := rep.AttachBaseline(baseline); err != nil {
			return err
		}
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rep.WriteJSON(w)
}
