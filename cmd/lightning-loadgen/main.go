// Command lightning-loadgen is the open-loop load generator for Lightning
// UDP inference servers: it offers Poisson or fixed-rate traffic across one
// or more models, measures per-model latency percentiles and goodput, and
// emits a machine-readable JSON load report. With -sweep it walks a series
// of offered-load levels and produces a saturation curve; with -self it
// spins an in-process server first, so one command yields a matched
// client+server view with zero setup (this is how BENCH_PR7.json and the CI
// smoke job run).
//
//	lightning-loadgen -addr 127.0.0.1:4055 -models 1:256 -rate 2000 -duration 5s
//	lightning-loadgen -self -workers 4 -models 4:256:3,5:256:1 -sweep 1000,2000,4000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	lightning "github.com/lightning-smartnic/lightning"
	"github.com/lightning-smartnic/lightning/internal/bench"
	"github.com/lightning-smartnic/lightning/internal/loadgen"
	"github.com/lightning-smartnic/lightning/internal/stats"
)

func main() {
	addr := flag.String("addr", "", "server UDP address (omit with -self)")
	targets := flag.String("targets", "", "comma-separated server addresses; socket i dials target i mod N (overrides -addr, e.g. several NICs or a coordinator front door)")
	modelsFlag := flag.String("models", "1:256", "traffic mix as id:width[:weight] pairs, comma-separated")
	rate := flag.Float64("rate", 1000, "aggregate offered load, requests/second")
	sweep := flag.String("sweep", "", "comma-separated offered-load series (overrides -rate, one point per level)")
	dist := flag.String("dist", loadgen.DistPoisson, "arrival process: poisson | fixed")
	duration := flag.Duration("duration", 5*time.Second, "sending window per point")
	conns := flag.Int("conns", 2, "parallel UDP sockets")
	timeout := flag.Duration("timeout", time.Second, "response grace after the sending window")
	seed := flag.Uint64("seed", 1, "deterministic seed for arrivals and model picks")
	reportEvery := flag.Duration("report", time.Second, "periodic summary interval (0 disables)")
	out := flag.String("out", "", "write the JSON load report to this file")
	minGoodput := flag.Float64("min-goodput", 0, "exit nonzero unless peak goodput reaches this many rps")
	maxShedFrac := flag.Float64("max-shed-frac", 1, "exit nonzero if the lowest-rate point sheds more than this fraction")

	self := flag.Bool("self", false, "serve an in-process synthetic-model server instead of targeting -addr")
	workers := flag.Int("workers", 4, "-self: UDP worker pool size")
	cores := flag.Int("cores", 2, "-self: photonic core shards")
	selfSeed := flag.Uint64("server-seed", 1, "-self: server-side seed")
	maxBatch := flag.Int("max-batch", 1, "-self: coalesce up to this many same-model queries per matrix pass")
	maxDelay := flag.Duration("max-delay", 0, "-self: partial-batch flush delay")
	admitQueue := flag.Int("admit-queue", 0, "-self: per-model admission queue bound (0 = default workers*4)")
	admitBudget := flag.Duration("admit-budget", 0, "-self: per-request latency budget; queued requests past it are shed (0 disables)")
	admitWeights := flag.String("admit-weights", "", "-self: per-model service weights as id:weight pairs, comma-separated")
	flag.Parse()

	models, err := parseModels(*modelsFlag)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := parseSweep(*sweep, *rate)
	if err != nil {
		log.Fatal(err)
	}
	var targetList []string
	if *targets != "" {
		for _, a := range strings.Split(*targets, ",") {
			if a = strings.TrimSpace(a); a != "" {
				targetList = append(targetList, a)
			}
		}
	}
	if !*self && *addr == "" && len(targetList) == 0 {
		log.Fatal("need -addr or -targets (or -self)")
	}

	admission := lightning.AdmissionConfig{MaxQueue: *admitQueue, Budget: *admitBudget}
	if *admitWeights != "" {
		admission.Models, err = parseWeights(*admitWeights)
		if err != nil {
			log.Fatal(err)
		}
	}

	report := bench.NewLoadReport(*dist, *seed, *conns)
	if *self {
		report.Workers = *workers
	}
	ctx := context.Background()
	for _, r := range rates {
		point, err := runPoint(ctx, pointConfig{
			addr: *addr, targets: targetList, models: models, rate: r, dist: *dist,
			duration: *duration, conns: *conns, timeout: *timeout,
			seed: *seed, reportEvery: *reportEvery,
			self: *self, workers: *workers, cores: *cores, selfSeed: *selfSeed,
			maxBatch: *maxBatch, maxDelay: *maxDelay, admission: admission,
		})
		if err != nil {
			log.Fatal(err)
		}
		report.Points = append(report.Points, point)
		log.Printf("point %8.0f rps: achieved %8.1f, goodput %8.1f, shed %5.1f%%, p50 %7.2fms p99 %7.2fms",
			point.OfferedRPS, point.AchievedRPS, point.GoodputRPS, point.ShedFrac*100,
			point.Latency.P50Ms, point.Latency.P99Ms)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d points)", *out, len(report.Points))
	} else if err := report.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// CI gates: peak goodput across the series, shed at the gentlest point.
	peak, minShed := 0.0, 1.0
	for _, p := range report.Points {
		if p.GoodputRPS > peak {
			peak = p.GoodputRPS
		}
		if p.ShedFrac < minShed {
			minShed = p.ShedFrac
		}
	}
	if peak < *minGoodput {
		log.Fatalf("gate: peak goodput %.1f rps below -min-goodput %.1f", peak, *minGoodput)
	}
	if len(report.Points) > 0 && minShed > *maxShedFrac {
		log.Fatalf("gate: best-point shed fraction %.3f above -max-shed-frac %.3f", minShed, *maxShedFrac)
	}
}

type pointConfig struct {
	addr        string
	targets     []string
	models      []loadgen.ModelSpec
	rate        float64
	dist        string
	duration    time.Duration
	conns       int
	timeout     time.Duration
	seed        uint64
	reportEvery time.Duration

	self      bool
	workers   int
	cores     int
	selfSeed  uint64
	maxBatch  int
	maxDelay  time.Duration
	admission lightning.AdmissionConfig
}

// runPoint measures one offered-load level. In -self mode each point gets a
// fresh server, so server counters are per-point and the sweep's levels
// never contaminate each other. The context bounds the in-process server's
// lifetime (the open-loop driver itself is duration-bound).
func runPoint(ctx context.Context, pc pointConfig) (bench.LoadPoint, error) {
	addr := pc.addr
	var nic *lightning.NIC
	var stop func() error
	if pc.self {
		var err error
		nic, addr, stop, err = startSelfServer(ctx, pc)
		if err != nil {
			return bench.LoadPoint{}, err
		}
	}
	res, runErr := loadgen.Run(loadgen.Config{
		Addr: addr, Targets: pc.targets, Models: pc.models, Rate: pc.rate, Dist: pc.dist,
		Duration: pc.duration, Conns: pc.conns, Timeout: pc.timeout,
		Seed: pc.seed, ReportEvery: pc.reportEvery, Progress: os.Stderr,
	})
	var serveErr error
	if stop != nil {
		serveErr = stop()
	}
	if runErr != nil {
		return bench.LoadPoint{}, runErr
	}
	if serveErr != nil {
		return bench.LoadPoint{}, fmt.Errorf("self server: %w", serveErr)
	}

	point := bench.LoadPoint{
		OfferedRPS:  pc.rate,
		AchievedRPS: res.OfferedRPS(),
		GoodputRPS:  res.GoodputRPS(),
		ShedFrac:    res.ShedFrac(),
		DurationS:   res.Elapsed.Seconds(),
		Latency:     summarize(res.AllLatencies()),
	}
	for _, spec := range pc.models {
		m := res.PerModel[spec.ID]
		ml := bench.ModelLoad{
			Model: spec.ID, Sent: m.Sent, Responses: m.Responses,
			Errors: m.Errors, Timeouts: m.Timeouts,
			Latency: summarize(m.Latencies),
		}
		if res.Elapsed > 0 {
			ml.GoodputRPS = float64(m.Responses) / res.Elapsed.Seconds()
		}
		point.Models = append(point.Models, ml)
	}
	if nic != nil {
		m := nic.Metrics()
		point.Server = &bench.ServerCounters{
			Served:       m.Served,
			QueueFull:    m.Serve.QueueFull,
			Shed:         m.Serve.Shed,
			DecodeErrors: m.Serve.DecodeErrors,
			WriteErrors:  m.Serve.WriteErrors,
		}
		if len(m.Serve.AdmissionDrops) > 0 {
			point.Server.AdmissionDrops = m.Serve.AdmissionDrops
		}
	}
	return point, nil
}

// startSelfServer builds an in-process server with one synthetic halves
// model per mix entry and serves it on an ephemeral loopback port. The serve
// loop's context derives from the caller's, so the caller's cancellation
// reaches the server even before stop is called.
func startSelfServer(ctx context.Context, pc pointConfig) (*lightning.NIC, string, func() error, error) {
	n, err := lightning.New(lightning.Config{
		Lanes: 2, Noiseless: true, Seed: pc.selfSeed, Cores: pc.cores,
		Batch:     lightning.BatchConfig{MaxBatch: pc.maxBatch, MaxDelay: pc.maxDelay},
		Admission: pc.admission,
	})
	if err != nil {
		return nil, "", nil, err
	}
	for _, spec := range pc.models {
		name := fmt.Sprintf("halves-%d", spec.ID)
		if err := n.RegisterModel(spec.ID, name, lightning.SyntheticHalvesModel(spec.Width)); err != nil {
			return nil, "", nil, err
		}
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	served := make(chan error, 1)
	go func() { served <- n.ServeUDPWorkers(sctx, conn, pc.workers) }()
	stop := func() error {
		cancel()
		err := <-served
		_ = n.Close()
		if cerr := conn.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return n, conn.LocalAddr().String(), stop, nil
}

// summarize cuts the report percentiles from raw latency seconds.
func summarize(latencies []float64) bench.LatencySummary {
	if len(latencies) == 0 {
		return bench.LatencySummary{}
	}
	cdf := stats.NewCDF(latencies)
	return bench.LatencySummary{
		Samples: cdf.Len(),
		P50Ms:   cdf.Percentile(0.50) * 1e3,
		P90Ms:   cdf.Percentile(0.90) * 1e3,
		P99Ms:   cdf.Percentile(0.99) * 1e3,
		MaxMs:   cdf.Percentile(1) * 1e3,
	}
}

// parseModels parses "id:width[:weight]" pairs.
func parseModels(s string) ([]loadgen.ModelSpec, error) {
	var specs []loadgen.ModelSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("-models entry %q: want id:width[:weight]", part)
		}
		id, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("-models entry %q: model id: %w", part, err)
		}
		width, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("-models entry %q: width: %w", part, err)
		}
		spec := loadgen.ModelSpec{ID: uint16(id), Width: width, Weight: 1}
		if len(fields) == 3 {
			if spec.Weight, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("-models entry %q: weight: %w", part, err)
			}
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-models %q: empty mix", s)
	}
	return specs, nil
}

// parseSweep parses the offered-load series, defaulting to a single point.
func parseSweep(s string, fallback float64) ([]float64, error) {
	if s == "" {
		return []float64{fallback}, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("-sweep entry %q: %w", part, err)
		}
		if r <= 0 {
			return nil, fmt.Errorf("-sweep entry %q: rate must be positive", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-sweep %q: no rates", s)
	}
	return rates, nil
}

// parseWeights parses "id:weight" pairs into admission policies.
func parseWeights(s string) (map[uint16]lightning.AdmitPolicy, error) {
	out := map[uint16]lightning.AdmitPolicy{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("-admit-weights entry %q: want id:weight", part)
		}
		id, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("-admit-weights entry %q: model id: %w", part, err)
		}
		w, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("-admit-weights entry %q: weight: %w", part, err)
		}
		out[uint16(id)] = lightning.AdmitPolicy{Weight: w}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-admit-weights %q: no entries", s)
	}
	return out, nil
}
