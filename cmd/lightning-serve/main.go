// Command lightning-serve runs a Lightning smartNIC as a UDP inference
// server: it trains the selected stand-in model, registers it on the
// photonic datapath, and answers Lightning wire queries.
//
//	lightning-serve -addr :4055 -model digits
//	lightning-serve -workers 8 -max-batch 8 -max-delay 200us
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	lightning "github.com/lightning-smartnic/lightning"
)

// parseAdmitWeights parses "id:weight" pairs into per-model admission
// policies (the same syntax lightning-loadgen's -admit-weights takes).
func parseAdmitWeights(s string) (map[uint16]lightning.AdmitPolicy, error) {
	out := map[uint16]lightning.AdmitPolicy{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("-admit-weights entry %q: want id:weight", part)
		}
		id, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("-admit-weights entry %q: model id: %w", part, err)
		}
		w, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("-admit-weights entry %q: weight: %w", part, err)
		}
		out[uint16(id)] = lightning.AdmitPolicy{Weight: w}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-admit-weights %q: no entries", s)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":4055", "UDP listen address")
	modelName := flag.String("model", "anomaly", "model to serve: anomaly | iot | digits | none (serve nothing until a coordinator installs partitions; implies -allow-install)")
	epochs := flag.Int("epochs", 25, "training epochs")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	noiseless := flag.Bool("noiseless", false, "disable the analog noise model")
	loadPath := flag.String("load", "", "load a saved model instead of training")
	savePath := flag.String("save", "", "save the trained model to this file")
	workers := flag.Int("workers", 1, "UDP worker pool size")
	cores := flag.Int("cores", 1, "photonic core shards (1 = the §6 prototype)")
	maxBatch := flag.Int("max-batch", 1, "coalesce up to this many same-model queries into one matrix pass (1 disables batching)")
	maxDelay := flag.Duration("max-delay", 0, "flush a partial batch after this long (0 = default; needs -max-batch > 1)")
	statsEvery := flag.Duration("stats", 10*time.Second, "periodic stats line interval (0 disables)")
	reassemblyTTL := flag.Duration("reassembly-ttl", 0, "partial-query reassembly TTL (0 = default)")
	healthWindow := flag.Int("health-window", 0, "per-shard health window in served queries (0 = default)")
	healthThreshold := flag.Float64("health-threshold", 0, "windowed error rate that quarantines a shard (0 = default)")
	probeEvery := flag.Int("probe-every", 0, "known-answer probe cadence in served queries per shard (0 disables)")
	admitQueue := flag.Int("admit-queue", 0, "per-model admission queue bound (0 = default workers*4)")
	admitBudget := flag.Duration("admit-budget", 0, "per-request latency budget; queued requests past it are shed instead of served (0 disables)")
	admitWeights := flag.String("admit-weights", "", "per-model service weights as id:weight pairs, comma-separated (empty = equal)")
	drainTimeout := flag.Duration("drain-timeout", 0, "bound on the shutdown drain of in-flight work (0 = default 5s)")
	allowInstall := flag.Bool("allow-install", false, "accept wire model installs (CtrlInstallModel) — required for cluster nodes behind lightning-coordinator")
	rxBatch := flag.Int("rx-batch", 0, "datagrams per batched read — one recvmmsg on the Linux fast path (0 = default 16)")
	txLinger := flag.Duration("tx-linger", 0, "worker-pool responses wait up to this long to share a batched write (0 = write through immediately)")
	txCoalesce := flag.Bool("tx-coalesce", false, "pack same-destination responses as concatenated frames in one datagram (receivers must unpack coalesced frames)")
	wireMTU := flag.Int("wire-mtu", 0, "datagram byte bound for -tx-coalesce packing (0 = default 1400)")
	wireFallback := flag.Bool("wire-fallback", false, "force the portable single-message wire path (no recvmmsg/sendmmsg)")
	flag.Parse()

	admission := lightning.AdmissionConfig{MaxQueue: *admitQueue, Budget: *admitBudget}
	if *admitWeights != "" {
		var err error
		if admission.Models, err = parseAdmitWeights(*admitWeights); err != nil {
			log.Fatal(err)
		}
	}

	var train *lightning.Dataset
	var hidden []int
	var id uint16
	switch *modelName {
	case "anomaly":
		train, hidden, id = lightning.AnomalyDataset(2000, *seed), []int{32, 16}, 1
	case "iot":
		train, hidden, id = lightning.IoTTrafficDataset(2000, *seed), []int{32, 16}, 2
	case "digits":
		train, hidden, id = lightning.DigitsDataset(3000, *seed), []int{64, 32}, 3
	case "none":
		// A bare cluster node: no local model, everything it serves arrives
		// over the wire from a coordinator.
		*allowInstall = true
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	var q *lightning.TrainedModel
	if *modelName == "none" {
		// nothing to train, load or save
	} else if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		q, err = lightning.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model from %s: 8-bit top-1 %.1f%% on fresh data",
			*loadPath, lightning.Evaluate(q, train)*100)
	} else {
		log.Printf("training %s model (%d examples, hidden %v, %d epochs)...",
			*modelName, len(train.Examples), hidden, *epochs)
		var floatAcc, intAcc float64
		var err error
		q, floatAcc, intAcc, err = lightning.Train(train, lightning.TrainOptions{
			Hidden: hidden, Epochs: *epochs, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained: float top-1 %.1f%%, 8-bit top-1 %.1f%%", floatAcc*100, intAcc*100)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := lightning.SaveModel(f, q); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved model to %s", *savePath)
	}

	nic, err := lightning.New(lightning.Config{
		Lanes: 2, Noiseless: *noiseless, Seed: *seed, Cores: *cores,
		ReassemblyTTL: *reassemblyTTL,
		HealthWindow:  *healthWindow, HealthThreshold: *healthThreshold,
		ProbeEvery:        *probeEvery,
		Batch:             lightning.BatchConfig{MaxBatch: *maxBatch, MaxDelay: *maxDelay},
		Admission:         admission,
		DrainTimeout:      *drainTimeout,
		AllowModelInstall: *allowInstall,
		Wire: lightning.WireConfig{
			RxBatch:       *rxBatch,
			TxLinger:      *txLinger,
			TxCoalesce:    *txCoalesce,
			MTU:           *wireMTU,
			ForceFallback: *wireFallback,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if q != nil {
		if err := nic.RegisterModel(id, *modelName, q); err != nil {
			log.Fatal(err)
		}
	}

	pc, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	if q != nil {
		log.Printf("serving model %q (id %d) on %s with %d core shard(s)",
			*modelName, id, pc.LocalAddr(), nic.Cores())
	} else {
		log.Printf("serving on %s with %d core shard(s), awaiting wire model installs",
			pc.LocalAddr(), nic.Cores())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	statsLine := func(m lightning.Metrics) string {
		shards := ""
		for i, h := range m.Shards {
			if i > 0 {
				shards += " "
			}
			shards += fmt.Sprintf("%d:%s", i, h.State)
		}
		line := fmt.Sprintf(
			"served %d | shards [%s] | pending reassembly %d (drops %d, expired %d) | queue-full %d, shed %d, decode-err %d, write-err %d | tx %d frames / %d bytes",
			m.Served, shards, m.PendingReassembly, m.ReassemblyDrops, m.ReassemblyExpired,
			m.Serve.QueueFull, m.Serve.Shed, m.Serve.DecodeErrors, m.Serve.WriteErrors,
			m.TxFrames, m.TxBytes)
		if len(m.Serve.AdmissionDrops) > 0 {
			ids := make([]int, 0, len(m.Serve.AdmissionDrops))
			for id := range m.Serve.AdmissionDrops {
				ids = append(ids, int(id))
			}
			sort.Ints(ids)
			drops := ""
			for i, id := range ids {
				if i > 0 {
					drops += " "
				}
				drops += fmt.Sprintf("%d:%d", id, m.Serve.AdmissionDrops[uint16(id)])
			}
			line += fmt.Sprintf(" | admission drops [%s]", drops)
		}
		if len(m.Serve.QueueDepth) > 0 {
			depth := 0
			for _, d := range m.Serve.QueueDepth {
				depth += d
			}
			line += fmt.Sprintf(" | admitted backlog %d", depth)
		}
		if h := m.Health; h.Quarantines > 0 || h.Unavailable > 0 {
			line += fmt.Sprintf(" | health: quarantines %d, readmissions %d, relocks %d/%d fail, probes %d/%d fail, unavailable %d",
				h.Quarantines, h.Readmissions, h.Relocks, h.RelockFailures,
				h.Probes, h.ProbeFailures, h.Unavailable)
		}
		if m.ModelInstalls > 0 || m.ModelInstallErrors > 0 {
			line += fmt.Sprintf(" | installs %d (%d rejected)", m.ModelInstalls, m.ModelInstallErrors)
		}
		if s := m.Serve; s.RxBatchSize.Count > 0 || s.TxBatchSize.Count > 0 {
			line += fmt.Sprintf(" | wire: rx-batch mean %.1f, tx-batch mean %.1f, syscalls rx %d tx %d",
				s.RxBatchSize.Mean(), s.TxBatchSize.Mean(), s.RxSyscalls, s.TxSyscalls)
			if m.Served > 0 && s.RxSyscalls+s.TxSyscalls > 0 {
				line += fmt.Sprintf(" (%.2f/query)", float64(s.RxSyscalls+s.TxSyscalls)/float64(m.Served))
			}
			if s.CoalescedFrames > 0 || s.OversizedCoalesce > 0 {
				line += fmt.Sprintf(", coalesced frames %d (oversized drops %d)", s.CoalescedFrames, s.OversizedCoalesce)
			}
			if s.DeadlineErrors > 0 {
				line += fmt.Sprintf(", deadline-err %d", s.DeadlineErrors)
			}
		}
		if b := m.Batch; b.Queries > 0 || m.BatchPending > 0 {
			line += fmt.Sprintf(" | batch: %d queries / %d flushes (full %d, timer %d, drain %d), max %d, pending %d",
				b.Queries, b.Flushes, b.FullFlushes, b.TimerFlushes, b.DrainFlushes,
				b.MaxBatch, m.BatchPending)
		}
		return line
	}
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					log.Print(statsLine(nic.Metrics()))
				}
			}
		}()
	}

	var serveErr error
	if *workers > 1 {
		serveErr = nic.ServeUDPWorkers(ctx, pc, *workers)
	} else {
		serveErr = nic.ServeUDP(ctx, pc)
	}
	if serveErr != nil {
		log.Fatal(serveErr)
	}
	// The serve loops drain accepted work before returning; Close retires
	// any recovery loop still backing off, and a bounded final Drain guards
	// stragglers from other entry points.
	_ = nic.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := nic.Drain(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	log.Print("final: ", statsLine(nic.Metrics()))
	fmt.Printf("served %d inference queries\n", nic.Served())
}
