// Command lightning-lint runs Lightning's project-specific static-analysis
// suite: the analyzers that enforce the determinism, race-safety,
// concurrency-lifecycle and wire-hygiene invariants the compiler cannot see
// (run with -help for the full list, or see DESIGN.md §8 and §14 for what
// each analyzer guards and its annotation escape hatch).
//
// Usage:
//
//	go run ./cmd/lightning-lint ./...
//	go run ./cmd/lightning-lint -json ./... > lint-report.json
//
// Diagnostics print one per line as "file:line: analyzer: message" — or,
// with -json, as a single JSON report ({"diagnostics": [...], "packages":
// N}) suitable for uploading as a CI artifact. Either way the process exits
// nonzero when any analyzer fires, so CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/lightning-smartnic/lightning/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit a JSON report on stdout instead of file:line text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lightning-lint [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(flag.Args(), *jsonOut))
}

// jsonDiagnostic is one finding in the -json report, flattened to the
// fields a CI artifact consumer wants.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output: every diagnostic plus enough context to
// read an empty report as "N packages checked, nothing found" rather than
// "nothing ran".
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Packages    int              `json:"packages"`
	Analyzers   []string         `json:"analyzers"`
}

func run(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				return rel
			}
		}
		return name
	}
	if jsonOut {
		report := jsonReport{Diagnostics: []jsonDiagnostic{}, Packages: len(pkgs)}
		for _, a := range lint.Analyzers() {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File:     relName(d.Pos.Filename),
				Line:     d.Pos.Line,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relName(d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lightning-lint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
