// Command lightning-lint runs Lightning's project-specific static-analysis
// suite: five analyzers (globalrand, clockinject, atomiccounter, errdrop,
// fixedmix) that enforce the determinism, race-safety and wire-hygiene
// invariants the compiler cannot see. See DESIGN.md §8 for what each
// analyzer guards and its annotation escape hatch.
//
// Usage:
//
//	go run ./cmd/lightning-lint ./...
//
// Diagnostics print one per line as "file:line: analyzer: message"; the
// process exits nonzero when any analyzer fires, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/lightning-smartnic/lightning/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lightning-lint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(flag.Args()))
}

func run(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lightning-lint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
