// Command lightning-devkit is the Go analogue of the paper's developer kit
// Python API (Appendix G): it exercises the calibrated photonic core
// directly for micro-benchmarking and debugging — (i) sending data through
// the vector dot-product core to benchmark computing accuracy, (ii)
// characterizing the SNR for calibration, and (iii) sweeping and locking
// modulator bias voltages.
//
//	lightning-devkit -op mac -a 0.85 -b 0.26 -a2 0.5 -b2 0.93
//	lightning-devkit -op snr
//	lightning-devkit -op bias
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/lightning-smartnic/lightning/internal/devkit"
)

func main() {
	op := flag.String("op", "mac", "operation: mac | snr | bias")
	a := flag.Float64("a", 0.85, "first operand x1 in [0,1]")
	b := flag.Float64("b", 0.26, "first operand w1 in [0,1]")
	a2 := flag.Float64("a2", 0.5, "second operand x2 in [0,1]")
	b2 := flag.Float64("b2", 0.93, "second operand w2 in [0,1]")
	seed := flag.Uint64("seed", 1, "noise seed")
	flag.Parse()

	switch *op {
	case "mac":
		kit, err := devkit.New(*seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := kit.MAC(*a, *b, *a2, *b2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("photonic vector dot product on 2 wavelengths:\n")
		fmt.Printf("  x = [%.2f, %.2f], w = [%.2f, %.2f]\n", *a, *a2, *b, *b2)
		fmt.Printf("  photonic result: %.3f\n", res.Photonic)
		fmt.Printf("  ground truth:    %.3f\n", res.GroundTruth)
		fmt.Printf("  error:           %+.2f%%\n", res.ErrorPct)
	case "snr":
		kit, err := devkit.New(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("SNR characterization (100 repeated multiplications per level):")
		fmt.Printf("%8s %12s %10s %10s\n", "level", "mean", "std", "SNR (dB)")
		for _, p := range kit.CharacterizeSNR(devkit.DefaultLevels(), 100) {
			fmt.Printf("%8d %12.2f %10.3f %10.1f\n", p.Level, p.Mean, p.Std, p.SNRdB)
		}
	case "bias":
		r := devkit.ConfigureBias(42)
		fmt.Println("device with unknown intrinsic phase; sweeping -9 V to 9 V...")
		fmt.Printf("locked at %+.2f V: transmission at zero drive %.5f (max extinction)\n",
			r.LockedBias, r.NullTransmission)
		fmt.Printf("encoding zone %.1f–%.1f V; transmission at V_pi: %.5f\n",
			r.EncodingLo, r.EncodingHi, r.PeakTransmission)
	default:
		log.Fatalf("unknown op %q", *op)
	}
}
