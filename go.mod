module github.com/lightning-smartnic/lightning

go 1.22
